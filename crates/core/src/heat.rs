//! Per-shard heat-map instrumentation.
//!
//! Every statement a shard executes — routed point ops, fan-out legs,
//! cursor pages, batch groups — is recorded against that shard's
//! [`ShardHeat`]: a statement counter, a row counter, and a log₂
//! latency histogram, all registered in the global
//! [`cpdb_obs::Registry`] under the shard's index dimension
//! (`shard.statements{shard=i}`, `shard.rows{shard=i}`,
//! `shard.latency_ns{shard=i}`). A skewed workload shows up as one
//! shard's counters running hot while its siblings idle — the heat map
//! `examples/observability.rs` prints.
//!
//! ## No double counting
//!
//! A statement is recorded exactly once, **where it runs**: the
//! executor's worker thread records the jobs scattered to it, and the
//! coordinating thread records only the statements it runs inline
//! (single-shard routed ops, fan-outs without an executor, on-demand
//! cursor continuations). Unlike the [`cpdb_storage::Meter`] cost
//! model — which charges a prefetched cursor page only when the page
//! is *received* — heat records work when the shard *performs* it, so
//! a cursor dropped mid-scan still shows the pages its shards really
//! computed. Checkpoints are maintenance, not statements, and are not
//! recorded. Instruments live in the process-global registry, so two
//! sharded stores in one process share the same per-shard cells;
//! measurement windows are delimited with [`cpdb_obs::Registry::reset`].

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::OnceLock;
use std::time::Duration;

/// The three per-shard instruments. Handles are cheap clones of shared
/// registry cells; recording is lock-free relaxed atomics.
#[derive(Clone)]
pub(crate) struct ShardHeat {
    statements: cpdb_obs::Counter,
    rows: cpdb_obs::Counter,
    latency: cpdb_obs::Histogram,
}

impl ShardHeat {
    /// The heat instruments of shard `shard`, registered on first use
    /// (registration is idempotent per `(name, index)` key).
    pub(crate) fn register(shard: u32) -> ShardHeat {
        let reg = cpdb_obs::global();
        ShardHeat {
            statements: reg.register_counter_idx("shard.statements", shard),
            rows: reg.register_counter_idx("shard.rows", shard),
            latency: reg.register_histogram_idx("shard.latency_ns", shard),
        }
    }

    /// One [`ShardHeat`] per shard, index-aligned with the store's
    /// shard vector.
    pub(crate) fn for_shards(n: usize) -> Vec<ShardHeat> {
        (0..n).map(|i| ShardHeat::register(i as u32)).collect()
    }

    /// Records one executed statement that touched `rows` rows and
    /// took `elapsed` of shard-side wall time.
    pub(crate) fn record(&self, rows: u64, elapsed: Duration) {
        self.statements.inc();
        self.rows.add(rows);
        self.latency.record_duration(elapsed);
    }
}

/// Entries a [`KeyHistogram`] holds before folding neighbours
/// together. 512 buckets bound both memory and the `observe` cost of
/// the hot routing path while still resolving sub-container skew —
/// boundaries only need to land near a weighted quantile, not on it.
const HISTOGRAM_CAP: usize = 512;

/// A bounded per-shard histogram over the **encoded record keys**
/// routed to that shard — the skew signal the rebalancer derives new
/// boundaries from.
///
/// Each bucket maps a key (an exact key observed at some point) to the
/// total weight observed at or above it up to the next bucket. When
/// the map outgrows [`HISTOGRAM_CAP`], every odd-indexed bucket is
/// folded into its predecessor: the predecessor's key is a correct
/// lower bound for the absorbed range, so bucket keys are always keys
/// that were really observed — compaction loses resolution, never
/// invents keys. Quantile error is bounded by the weight of one
/// bucket.
///
/// Fed from the coordinator's routing sites (where the encoded key is
/// already in hand): `insert`, `insert_batch`, `at`/`by_loc` point
/// probes, and single-shard prefix probes. Fan-outs and cursor pages
/// are skipped — they touch every shard and carry no routing signal.
/// Recording takes the `heat.keyhist` mutex, a leaf in the lock
/// hierarchy (nothing is acquired under it).
pub(crate) struct KeyHistogram {
    inner: Mutex<BTreeMap<String, u64>>,
}

impl KeyHistogram {
    /// An empty histogram.
    pub(crate) fn new() -> KeyHistogram {
        KeyHistogram { inner: Mutex::labeled("heat.keyhist", BTreeMap::new()) }
    }

    /// One fresh histogram per shard, index-aligned with the store's
    /// shard vector.
    pub(crate) fn for_shards(n: usize) -> Vec<std::sync::Arc<KeyHistogram>> {
        (0..n).map(|_| std::sync::Arc::new(KeyHistogram::new())).collect()
    }

    /// Records `weight` statements routed to encoded key `key`.
    pub(crate) fn observe(&self, key: &str, weight: u64) {
        let mut map = self.inner.lock();
        *map.entry(key.to_owned()).or_insert(0) += weight;
        if map.len() > HISTOGRAM_CAP {
            Self::compact(&mut map);
        }
    }

    /// Folds every odd-indexed bucket into its predecessor, halving
    /// the bucket count while keeping every surviving key one that was
    /// really observed.
    fn compact(map: &mut BTreeMap<String, u64>) {
        let mut folded = BTreeMap::new();
        let mut carry: Option<(String, u64)> = None;
        for (i, (k, w)) in std::mem::take(map).into_iter().enumerate() {
            if i.is_multiple_of(2) {
                if let Some((pk, pw)) = carry.take() {
                    folded.insert(pk, pw);
                }
                carry = Some((k, w));
            } else if let Some((_, pw)) = carry.as_mut() {
                *pw += w;
            }
        }
        if let Some((pk, pw)) = carry {
            folded.insert(pk, pw);
        }
        *map = folded;
    }

    /// Total observed weight.
    pub(crate) fn total_weight(&self) -> u64 {
        self.inner.lock().values().sum()
    }

    /// Up to `n - 1` boundary keys cutting the observed weight into
    /// `n` roughly equal spans: boundary `i` is the first bucket key
    /// at which the running weight reaches `i/n` of the total
    /// (weighted quantiles, compared by cross-multiplication so no
    /// division rounds the cut). The first bucket's key is never
    /// emitted, so every boundary is **strictly above** the least
    /// observed key and at most the greatest — split ranges are never
    /// empty on the low side. Sorted, unique by construction.
    pub(crate) fn split_keys(&self, n: usize) -> Vec<String> {
        let map = self.inner.lock();
        let total: u64 = map.values().sum();
        if n <= 1 || total == 0 || map.len() < 2 {
            return Vec::new();
        }
        let mut out: Vec<String> = Vec::new();
        let mut cum: u128 = 0;
        let mut target = 1u128; // next quantile numerator, of n
        let mut entries = map.iter().peekable();
        while let Some((_, w)) = entries.next() {
            cum += u128::from(*w);
            // The cut lands *after* this bucket: the next bucket's key
            // becomes the boundary (an observed key, strictly above
            // the first key).
            while target < n as u128 && cum * n as u128 >= target * u128::from(total) {
                if let Some((next_key, _)) = entries.peek() {
                    if out.last() != Some(*next_key) {
                        out.push((*next_key).clone());
                    }
                }
                target += 1;
            }
        }
        out
    }

    /// Splits the histogram at `boundary`: buckets with keys
    /// `>= boundary` move into the returned histogram, the rest stay.
    /// Carries observed weight across a shard split so the rebalancer
    /// keeps converging on still-hot subranges instead of restarting
    /// from empty histograms.
    pub(crate) fn split_off(&self, boundary: &str) -> KeyHistogram {
        let upper = self.inner.lock().split_off(boundary);
        KeyHistogram { inner: Mutex::labeled("heat.keyhist", upper) }
    }

    /// Folds `other`'s buckets into this histogram (the merge-side
    /// counterpart of [`KeyHistogram::split_off`]).
    pub(crate) fn absorb(&self, other: &KeyHistogram) {
        let theirs: Vec<(String, u64)> =
            other.inner.lock().iter().map(|(k, w)| (k.clone(), *w)).collect();
        let mut map = self.inner.lock();
        for (k, w) in theirs {
            *map.entry(k).or_insert(0) += w;
        }
        if map.len() > HISTOGRAM_CAP {
            Self::compact(&mut map);
        }
    }
}

/// Global rebalance instruments, registered once (the `obs-name` lint
/// pins one registration site per name).
pub(crate) struct RebalanceObs {
    /// Completed shard splits.
    pub(crate) splits: cpdb_obs::Counter,
    /// Completed shard merges.
    pub(crate) merges: cpdb_obs::Counter,
    /// Rows copied between engines by migrations.
    pub(crate) migrated_rows: cpdb_obs::Counter,
    /// Current router generation (of the most recent rebalanced store).
    pub(crate) generation: cpdb_obs::Gauge,
    /// Wall time of the write-blocking cut-over window, per migration.
    pub(crate) pause_ns: cpdb_obs::Histogram,
}

impl RebalanceObs {
    /// The process-global handle, registered on first use.
    pub(crate) fn get() -> &'static RebalanceObs {
        static OBS: OnceLock<RebalanceObs> = OnceLock::new();
        OBS.get_or_init(|| {
            let reg = cpdb_obs::global();
            RebalanceObs {
                splits: reg.register_counter("rebalance.splits"),
                merges: reg.register_counter("rebalance.merges"),
                migrated_rows: reg.register_counter("rebalance.migrated_rows"),
                generation: reg.register_gauge("rebalance.generation"),
                pause_ns: reg.register_histogram("rebalance.pause_ns"),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_keys_cut_weight_into_even_spans() {
        let h = KeyHistogram::new();
        for i in 0..100u32 {
            h.observe(&format!("k{i:03}"), 1);
        }
        let cuts = h.split_keys(4);
        assert_eq!(cuts, vec!["k025", "k050", "k075"]);
        assert_eq!(h.total_weight(), 100);
    }

    #[test]
    fn split_keys_follow_weight_not_key_count() {
        let h = KeyHistogram::new();
        h.observe("a", 1);
        h.observe("b", 97);
        h.observe("c", 1);
        h.observe("d", 1);
        // The median of the weight lands inside "b"; the first key at
        // which half the weight is reached is "b", so the cut goes
        // after it.
        assert_eq!(h.split_keys(2), vec!["c"]);
    }

    #[test]
    fn split_keys_never_emit_the_least_key_and_stay_sorted_unique() {
        let h = KeyHistogram::new();
        h.observe("only", 1000);
        assert!(h.split_keys(8).is_empty(), "a single bucket cannot be cut");
        h.observe("zz", 1);
        let cuts = h.split_keys(8);
        for c in &cuts {
            assert!(c.as_str() > "only", "boundary must be strictly above the least key");
        }
        let mut sorted = cuts.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(cuts, sorted);
    }

    #[test]
    fn compaction_bounds_buckets_and_preserves_weight_and_observed_keys() {
        let h = KeyHistogram::new();
        for i in 0..(HISTOGRAM_CAP as u32 * 4) {
            h.observe(&format!("key-{i:06}"), 2);
        }
        let map = h.inner.lock();
        assert!(map.len() <= HISTOGRAM_CAP, "cap holds: {} buckets", map.len());
        assert_eq!(map.values().sum::<u64>(), u64::from(HISTOGRAM_CAP as u32 * 4) * 2);
        for k in map.keys() {
            let n: u32 = k["key-".len()..].parse().expect("compaction only keeps observed keys");
            assert!(n < HISTOGRAM_CAP as u32 * 4);
        }
    }

    #[test]
    fn split_off_and_absorb_round_trip_weight() {
        let h = KeyHistogram::new();
        h.observe("a", 10);
        h.observe("m", 20);
        h.observe("z", 30);
        let upper = h.split_off("m");
        assert_eq!(h.total_weight(), 10);
        assert_eq!(upper.total_weight(), 50);
        h.absorb(&upper);
        assert_eq!(h.total_weight(), 60);
        assert_eq!(h.split_keys(2), vec!["z"]);
    }
}
