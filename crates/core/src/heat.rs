//! Per-shard heat-map instrumentation.
//!
//! Every statement a shard executes — routed point ops, fan-out legs,
//! cursor pages, batch groups — is recorded against that shard's
//! [`ShardHeat`]: a statement counter, a row counter, and a log₂
//! latency histogram, all registered in the global
//! [`cpdb_obs::Registry`] under the shard's index dimension
//! (`shard.statements{shard=i}`, `shard.rows{shard=i}`,
//! `shard.latency_ns{shard=i}`). A skewed workload shows up as one
//! shard's counters running hot while its siblings idle — the heat map
//! `examples/observability.rs` prints.
//!
//! ## No double counting
//!
//! A statement is recorded exactly once, **where it runs**: the
//! executor's worker thread records the jobs scattered to it, and the
//! coordinating thread records only the statements it runs inline
//! (single-shard routed ops, fan-outs without an executor, on-demand
//! cursor continuations). Unlike the [`cpdb_storage::Meter`] cost
//! model — which charges a prefetched cursor page only when the page
//! is *received* — heat records work when the shard *performs* it, so
//! a cursor dropped mid-scan still shows the pages its shards really
//! computed. Checkpoints are maintenance, not statements, and are not
//! recorded. Instruments live in the process-global registry, so two
//! sharded stores in one process share the same per-shard cells;
//! measurement windows are delimited with [`cpdb_obs::Registry::reset`].

use std::time::Duration;

/// The three per-shard instruments. Handles are cheap clones of shared
/// registry cells; recording is lock-free relaxed atomics.
#[derive(Clone)]
pub(crate) struct ShardHeat {
    statements: cpdb_obs::Counter,
    rows: cpdb_obs::Counter,
    latency: cpdb_obs::Histogram,
}

impl ShardHeat {
    /// The heat instruments of shard `shard`, registered on first use
    /// (registration is idempotent per `(name, index)` key).
    pub(crate) fn register(shard: u32) -> ShardHeat {
        let reg = cpdb_obs::global();
        ShardHeat {
            statements: reg.register_counter_idx("shard.statements", shard),
            rows: reg.register_counter_idx("shard.rows", shard),
            latency: reg.register_histogram_idx("shard.latency_ns", shard),
        }
    }

    /// One [`ShardHeat`] per shard, index-aligned with the store's
    /// shard vector.
    pub(crate) fn for_shards(n: usize) -> Vec<ShardHeat> {
        (0..n).map(|i| ShardHeat::register(i as u32)).collect()
    }

    /// Records one executed statement that touched `rows` rows and
    /// took `elapsed` of shard-side wall time.
    pub(crate) fn record(&self, rows: u64, elapsed: Duration) {
        self.statements.inc();
        self.rows.add(rows);
        self.latency.record_duration(elapsed);
    }
}
