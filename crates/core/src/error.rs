//! Errors for the provenance layer.

use std::fmt;

/// Failure of a provenance operation.
#[derive(Clone)]
pub enum CoreError {
    /// The provenance store's storage engine failed.
    Storage(cpdb_storage::StorageError),
    /// The target or source database failed.
    Db(cpdb_xmldb::XmlDbError),
    /// An update was ill-formed (the points where `[[U]]` is undefined).
    Update(cpdb_update::UpdateError),
    /// A tree/path-level failure.
    Tree(cpdb_tree::TreeError),
    /// The Datalog cross-check evaluator failed.
    Datalog(cpdb_datalog::DatalogError),
    /// The editor was asked to do something inconsistent with its state.
    Editor {
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Storage(e) => write!(f, "provenance store: {e}"),
            CoreError::Db(e) => write!(f, "database: {e}"),
            CoreError::Update(e) => write!(f, "update: {e}"),
            CoreError::Tree(e) => write!(f, "{e}"),
            CoreError::Datalog(e) => write!(f, "datalog: {e}"),
            CoreError::Editor { reason } => write!(f, "editor: {reason}"),
        }
    }
}

impl fmt::Debug for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Storage(e) => Some(e),
            CoreError::Db(e) => Some(e),
            CoreError::Update(e) => Some(e),
            CoreError::Tree(e) => Some(e),
            CoreError::Datalog(e) => Some(e),
            CoreError::Editor { .. } => None,
        }
    }
}

impl From<cpdb_storage::StorageError> for CoreError {
    fn from(e: cpdb_storage::StorageError) -> CoreError {
        CoreError::Storage(e)
    }
}

impl From<cpdb_xmldb::XmlDbError> for CoreError {
    fn from(e: cpdb_xmldb::XmlDbError) -> CoreError {
        CoreError::Db(e)
    }
}

impl From<cpdb_update::UpdateError> for CoreError {
    fn from(e: cpdb_update::UpdateError) -> CoreError {
        CoreError::Update(e)
    }
}

impl From<cpdb_tree::TreeError> for CoreError {
    fn from(e: cpdb_tree::TreeError) -> CoreError {
        CoreError::Tree(e)
    }
}

impl From<cpdb_datalog::DatalogError> for CoreError {
    fn from(e: cpdb_datalog::DatalogError) -> CoreError {
        CoreError::Datalog(e)
    }
}

/// Result alias for provenance operations.
pub type Result<T> = std::result::Result<T, CoreError>;
