//! Cross-database provenance: the `Own` query (Section 2.2).
//!
//! A single target's provenance is necessarily partial: "the Hist and
//! Mod queries stop following the chain of provenance of a piece of
//! data when it exits T." But "if source databases also store
//! provenance, we can provide more complete answers by combining the
//! provenance information of all of the databases. In addition, there
//! are queries which only make sense if several databases track
//! provenance, such as: **Own** — What is the history of 'ownership' of
//! a piece of data? That is, what sequence of databases contained the
//! previous copies of a node?"
//!
//! A [`Federation`] registers the provenance stores of every
//! cooperating database and continues `Trace` chains across database
//! boundaries, yielding the ownership history.

use crate::error::Result;
use crate::query::{FromStep, QueryEngine, TraceStep};
use crate::read::ReadArc;
use crate::record::Tid;
use cpdb_tree::{Label, Path};
use std::collections::BTreeMap;

/// One database's provenance publication: its store, whether the
/// records are hierarchical, and its last transaction.
pub struct Member {
    engine: QueryEngine,
    tnow: Tid,
}

/// One hop of an ownership history.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OwnStep {
    /// The database that held the data.
    pub db: Label,
    /// Where in that database it sat.
    pub loc: Path,
    /// The transaction (in that database's numbering) that brought it
    /// there, or `None` for the chain's origin (initially present or
    /// untracked).
    pub arrived_by: Option<Tid>,
}

/// A set of cooperating databases that publish their provenance.
#[derive(Default)]
pub struct Federation {
    members: BTreeMap<Label, Member>,
}

impl Federation {
    /// An empty federation.
    pub fn new() -> Federation {
        Federation::default()
    }

    /// Registers a database's provenance publication: any read handle
    /// — an `Arc` of its store, or a snapshot handle from a serving
    /// front, so federated queries can run without flushing members'
    /// write pipelines.
    pub fn register(
        &mut self,
        db: impl Into<Label>,
        reads: impl Into<ReadArc>,
        hierarchical: bool,
        tnow: Tid,
    ) -> &mut Self {
        let db = db.into();
        self.members.insert(db, Member { engine: QueryEngine::new(reads, hierarchical, db), tnow });
        self
    }

    /// The registered database names.
    pub fn members(&self) -> Vec<Label> {
        self.members.keys().copied().collect()
    }

    /// `Own(p)`: the sequence of databases that held the data now at
    /// `loc`, newest first — starting with `loc`'s own database and
    /// following copies across every member that tracks provenance.
    ///
    /// Chains stop (with a final origin step, `arrived_by: None`) at
    /// data that was initially present, locally inserted, or copied
    /// from a database outside the federation.
    pub fn own(&self, loc: &Path) -> Result<Vec<OwnStep>> {
        let mut steps = Vec::new();
        let mut cur = loc.clone();
        // Cap hops defensively: a cycle would require a copy chain
        // A→B→A with consistent timestamps, which tids prevent within
        // one member but clock skew across members could fake.
        for _ in 0..64 {
            let Some(db_name) = cur.first() else { break };
            let Some(member) = self.members.get(&db_name) else {
                // The data came from an untracked database: the trail
                // ends here, but the location is still part of the
                // ownership history.
                steps.push(OwnStep { db: db_name, loc: cur, arrived_by: None });
                return Ok(steps);
            };
            let trace = member.engine.trace(&cur, member.tnow)?;
            match trace.last() {
                None => {
                    // Unchanged since this database's initial version.
                    steps.push(OwnStep { db: db_name, loc: cur, arrived_by: None });
                    return Ok(steps);
                }
                Some(TraceStep { tid, action: FromStep::Inserted, .. }) => {
                    steps.push(OwnStep { db: db_name, loc: cur, arrived_by: Some(*tid) });
                    return Ok(steps);
                }
                Some(TraceStep { tid, action: FromStep::Copied { src }, .. }) => {
                    steps.push(OwnStep { db: db_name, loc: cur.clone(), arrived_by: Some(*tid) });
                    cur = src.clone();
                }
                Some(TraceStep { action: FromStep::Deleted | FromStep::Unchanged, .. }) => {
                    // Anomalous store; stop rather than guess.
                    steps.push(OwnStep { db: db_name, loc: cur, arrived_by: None });
                    return Ok(steps);
                }
            }
        }
        Ok(steps)
    }

    /// Combined `Hist` across the federation: every `(database, tid)`
    /// copy involved in moving the data to its current position.
    pub fn hist_across(&self, loc: &Path) -> Result<Vec<(Label, Tid)>> {
        let mut out = Vec::new();
        let mut cur = loc.clone();
        for _ in 0..64 {
            let Some(db_name) = cur.first() else { break };
            let Some(member) = self.members.get(&db_name) else { break };
            let trace = member.engine.trace(&cur, member.tnow)?;
            let mut next = None;
            for step in &trace {
                if let FromStep::Copied { src } = &step.action {
                    out.push((db_name, step.tid));
                    next = Some(src.clone());
                }
            }
            // Follow only the final (oldest) hop out of this database.
            match trace.last() {
                Some(TraceStep { action: FromStep::Copied { src }, .. }) => {
                    let _ = next;
                    if src.first() == Some(db_name) {
                        break; // intra-db chains were already followed by trace()
                    }
                    cur = src.clone();
                }
                _ => break,
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;
    use crate::tracker::{Strategy, Tracker};
    use cpdb_tree::{tree, Database, Tree};
    use cpdb_update::{parse_script, Workspace};
    use std::sync::Arc;

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    /// Builds a provenance-tracked database from sources, returning
    /// (final tree, store, tnow).
    fn tracked(
        name: &str,
        initial: Tree,
        sources: Vec<(Label, Tree)>,
        script: &str,
        strategy: Strategy,
    ) -> (Tree, Arc<MemStore>, Tid) {
        let mut ws = Workspace::new(Database::new(name, initial));
        for (src_name, tree) in sources {
            ws.add_source(Database::new(src_name, tree));
        }
        let store = Arc::new(MemStore::new());
        let mut tracker = Tracker::new(strategy, store.clone(), Tid(1));
        for u in &parse_script(script).unwrap() {
            let e = ws.apply(u).unwrap();
            tracker.track(&e).unwrap();
        }
        tracker.commit().unwrap();
        (ws.target().root().clone(), store, Tid(tracker.current_tid().0 - 1))
    }

    /// A three-database chain: UniProt → MidDB → MyDB. `Own` on MyDB's
    /// copy walks all the way back to UniProt.
    #[test]
    fn own_follows_chains_across_databases() {
        let uniprot = tree! { "P01" => { "seq" => "MKV" } };

        // MidDB copies from UniProt (and tracks provenance).
        let (mid_tree, mid_store, mid_tnow) = tracked(
            "MidDB",
            tree! {},
            vec![(Label::new("UniProt"), uniprot.clone())],
            "copy UniProt/P01 into MidDB/entry",
            Strategy::Hierarchical,
        );

        // MyDB copies from MidDB (and tracks provenance).
        let (_, my_store, my_tnow) = tracked(
            "MyDB",
            tree! {},
            vec![(Label::new("MidDB"), mid_tree)],
            "copy MidDB/entry into MyDB/mine",
            Strategy::HierarchicalTransactional,
        );

        let mut fed = Federation::new();
        fed.register("MyDB", my_store, true, my_tnow);
        fed.register("MidDB", mid_store, true, mid_tnow);
        // UniProt does not track provenance and is not registered.

        let own = fed.own(&p("MyDB/mine/seq")).unwrap();
        let dbs: Vec<&str> = own.iter().map(|s| s.db.as_str()).collect();
        assert_eq!(dbs, vec!["MyDB", "MidDB", "UniProt"]);
        assert_eq!(own[0].loc, p("MyDB/mine/seq"));
        assert_eq!(own[1].loc, p("MidDB/entry/seq"));
        assert_eq!(own[2].loc, p("UniProt/P01/seq"));
        assert!(own[0].arrived_by.is_some());
        assert!(own[1].arrived_by.is_some());
        assert_eq!(own[2].arrived_by, None, "UniProt is the untracked origin");
    }

    #[test]
    fn own_stops_at_local_inserts() {
        let (_, store, tnow) = tracked(
            "MyDB",
            tree! {},
            vec![],
            "insert {note : \"local\"} into MyDB",
            Strategy::Naive,
        );
        let mut fed = Federation::new();
        fed.register("MyDB", store, false, tnow);
        let own = fed.own(&p("MyDB/note")).unwrap();
        assert_eq!(own.len(), 1);
        assert_eq!(own[0].arrived_by, Some(Tid(1)), "created by the local insert");
    }

    #[test]
    fn own_handles_initially_present_data() {
        let (_, store, tnow) = tracked(
            "MyDB",
            tree! { "old" => 1 },
            vec![],
            "insert {unrelated : 2} into MyDB",
            Strategy::Naive,
        );
        let mut fed = Federation::new();
        fed.register("MyDB", store, false, tnow);
        let own = fed.own(&p("MyDB/old")).unwrap();
        assert_eq!(
            own,
            vec![OwnStep { db: Label::new("MyDB"), loc: p("MyDB/old"), arrived_by: None }]
        );
    }

    #[test]
    fn hist_across_collects_every_copy() {
        let uniprot = tree! { "P01" => { "seq" => "MKV" } };
        let (mid_tree, mid_store, mid_tnow) = tracked(
            "MidDB",
            tree! {},
            vec![(Label::new("UniProt"), uniprot)],
            "copy UniProt/P01 into MidDB/e1;
             copy MidDB/e1 into MidDB/e2",
            Strategy::Naive,
        );
        let (_, my_store, my_tnow) = tracked(
            "MyDB",
            tree! {},
            vec![(Label::new("MidDB"), mid_tree)],
            "copy MidDB/e2 into MyDB/mine",
            Strategy::Naive,
        );
        let mut fed = Federation::new();
        fed.register("MyDB", my_store, false, my_tnow);
        fed.register("MidDB", mid_store, false, mid_tnow);
        let hops = fed.hist_across(&p("MyDB/mine/seq")).unwrap();
        // One copy in MyDB, two in MidDB (e1→e2 and UniProt→e1).
        assert_eq!(hops.len(), 3, "{hops:?}");
        assert_eq!(hops[0].0.as_str(), "MyDB");
        assert_eq!(hops[1].0.as_str(), "MidDB");
        assert_eq!(hops[2].0.as_str(), "MidDB");
    }
}
