//! Equivalence suite: [`ShardedStore`] (N = 1 and N = 4, serial and
//! parallel-executor) and group-commit [`PipelinedStore`] fronts must
//! return the same record sets as an indexed [`SqlStore`] for every
//! [`ProvStore`] method, on a provenance load derived from the seeded
//! workload generator — plus concurrent insert/scan and multi-producer
//! pipeline stress tests across shards.

use cpdb_core::{
    MemStore, PipelineConfig, PipelinedStore, ProvRecord, ProvStore, ShardedStore, SqlStore, Tid,
};
use cpdb_storage::Engine;
use cpdb_tree::Path;
use cpdb_update::AtomicUpdate;
use cpdb_workload::{generate, GenConfig, UpdatePattern, Workload};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Provenance records the seeded workload's script would produce: one
/// record per atomic update (tids grouped in commit-sized runs), plus a
/// child-level record per copy so subtree probes have depth to find.
fn records_from(wl: &Workload) -> Vec<ProvRecord> {
    let mut out = Vec::new();
    for (i, u) in wl.script.iter().enumerate() {
        let tid = Tid(1 + (i / 5) as u64);
        match u {
            AtomicUpdate::Insert { target, label, .. } => {
                out.push(ProvRecord::insert(tid, target.child(*label)));
            }
            AtomicUpdate::Delete { target, label } => {
                out.push(ProvRecord::delete(tid, target.child(*label)));
            }
            AtomicUpdate::Copy { src, target } => {
                out.push(ProvRecord::copy(tid, target.clone(), src.clone()));
                out.push(ProvRecord::copy(tid, target.child("x"), src.child("x")));
            }
        }
    }
    out
}

/// The top-level containers (`T/<label>`) appearing in the records.
fn containers_of(records: &[ProvRecord]) -> Vec<Path> {
    let set: BTreeSet<Path> = records
        .iter()
        .filter(|r| r.loc.len() >= 2)
        .map(|r| Path::from(&r.loc.segments()[..2]))
        .collect();
    set.into_iter().collect()
}

fn sorted(mut v: Vec<ProvRecord>) -> Vec<ProvRecord> {
    v.sort();
    v
}

/// Drains a cursor, asserting every batch respects the size bound.
fn drain_checked(mut cur: cpdb_core::RecordCursor<'_>, batch: usize) -> Vec<ProvRecord> {
    let mut out = Vec::new();
    while let Some(chunk) = cur.next_batch().unwrap() {
        assert!((1..=batch).contains(&chunk.len()), "batch bound violated: {}", chunk.len());
        out.extend(chunk);
    }
    out
}

#[test]
fn sharded_store_matches_sql_store_on_the_seeded_workload() {
    let wl = generate(&GenConfig::for_length(UpdatePattern::Mix, 600, 2006), 600);
    let records = records_from(&wl);
    assert!(records.len() >= 600);
    let containers = containers_of(&records);
    assert!(containers.len() >= 8, "workload must exercise many containers");

    let e1 = Engine::in_memory();
    let oracle = SqlStore::create(&e1, true).unwrap();
    let mem = MemStore::new();
    let n1 = ShardedStore::in_memory(Vec::new(), true).unwrap();
    let n4 = ShardedStore::in_memory(ShardedStore::split_points(&containers, 4), true).unwrap();
    assert_eq!(n1.shard_count(), 1);
    assert_eq!(n4.shard_count(), 4);
    // Pipeline-fed fronts: group-commit over an unsharded SqlStore and
    // over a parallel-executor 4-shard store — writes go through the
    // async queue, reads must still answer exactly like the oracle.
    let e2 = Engine::in_memory();
    let pipe_sql = PipelinedStore::spawn(
        Arc::new(SqlStore::create(&e2, true).unwrap()),
        PipelineConfig::batched(16),
    );
    let pipe_n4 = PipelinedStore::spawn(
        Arc::new(
            ShardedStore::in_memory(ShardedStore::split_points(&containers, 4), true)
                .unwrap()
                .with_parallel_executor(),
        ),
        PipelineConfig::batched(16),
    );

    // Load every store identically: singles and batches interleaved so
    // both insert paths are exercised (batches span shard boundaries).
    for (i, chunk) in records.chunks(7).enumerate() {
        for store in
            [&oracle as &dyn ProvStore, &mem, &n1, &n4, &pipe_sql as &dyn ProvStore, &pipe_n4]
        {
            if i % 2 == 0 {
                store.insert_batch(chunk).unwrap();
            } else {
                for r in chunk {
                    store.insert(r).unwrap();
                }
            }
        }
    }
    pipe_sql.flush().unwrap();
    pipe_n4.flush().unwrap();

    let stores: [(&str, &dyn ProvStore); 5] = [
        ("mem", &mem),
        ("n1", &n1),
        ("n4", &n4),
        ("pipelined-sql", &pipe_sql),
        ("pipelined-sharded-parallel", &pipe_n4),
    ];
    for (name, store) in stores {
        assert_eq!(store.len(), oracle.len(), "{name}: len");
        assert_eq!(sorted(store.all().unwrap()), sorted(oracle.all().unwrap()), "{name}: all");

        let max_tid = 1 + (records.len() / 5) as u64;
        for tid in (0..=max_tid + 1).map(Tid) {
            assert_eq!(
                sorted(store.by_tid(tid).unwrap()),
                sorted(oracle.by_tid(tid).unwrap()),
                "{name}: by_tid {tid:?}"
            );
        }

        // Prefixes: every container, the database root, the empty
        // (whole-table) path, and a miss.
        let mut prefixes = containers.clone();
        prefixes.push(Path::single(wl.target_name));
        prefixes.push(Path::epsilon());
        prefixes.push("T/zzz/nope".parse().unwrap());
        for prefix in &prefixes {
            assert_eq!(
                sorted(store.by_loc_prefix(prefix).unwrap()),
                sorted(oracle.by_loc_prefix(prefix).unwrap()),
                "{name}: by_loc_prefix {prefix}"
            );
            for tid in [Tid(1), Tid(17), Tid(9999)] {
                assert_eq!(
                    sorted(store.by_tid_loc_prefix(tid, prefix).unwrap()),
                    sorted(oracle.by_tid_loc_prefix(tid, prefix).unwrap()),
                    "{name}: by_tid_loc_prefix {tid:?} {prefix}"
                );
            }
        }

        // Streaming cursors: for every prefix and several batch sizes
        // the drained cursor must equal its materializing counterpart
        // (`by_loc_prefix` / `by_tid_loc_prefix`), arrive in
        // non-decreasing key order, and respect the batch bound.
        for prefix in &prefixes {
            let want = sorted(oracle.by_loc_prefix(prefix).unwrap());
            for batch in [1usize, 3, 64, usize::MAX] {
                let cur = store.scan_loc_prefix(prefix, batch).unwrap();
                let got = drain_checked(cur, batch);
                assert_eq!(sorted(got.clone()), want, "{name}: scan_loc_prefix {prefix} b{batch}");
                assert!(
                    got.windows(2).all(|w| w[0].loc.key() <= w[1].loc.key()),
                    "{name}: cursor key order {prefix} b{batch}"
                );
            }
            for tid in [Tid(1), Tid(17), Tid(9999)] {
                let want = sorted(oracle.by_tid_loc_prefix(tid, prefix).unwrap());
                for batch in [1usize, 64, usize::MAX] {
                    let cur = store.scan_tid_loc_prefix(tid, prefix, batch).unwrap();
                    assert_eq!(
                        sorted(drain_checked(cur, batch)),
                        want,
                        "{name}: scan_tid_loc_prefix {tid:?} {prefix} b{batch}"
                    );
                }
            }
        }

        // Point and chain probes at every 13th record's location.
        for r in records.iter().step_by(13) {
            assert_eq!(
                sorted(store.at(r.tid, &r.loc).unwrap()),
                sorted(oracle.at(r.tid, &r.loc).unwrap()),
                "{name}: at"
            );
            assert_eq!(
                sorted(store.by_loc(&r.loc).unwrap()),
                sorted(oracle.by_loc(&r.loc).unwrap()),
                "{name}: by_loc"
            );
            for min_depth in [0usize, 1, 2] {
                assert_eq!(
                    sorted(store.by_loc_chain(&r.loc, min_depth).unwrap()),
                    sorted(oracle.by_loc_chain(&r.loc, min_depth).unwrap()),
                    "{name}: by_loc_chain {min_depth}"
                );
            }
        }
    }
}

/// Mid-scan cursor drops across the deployment fronts: a cursor
/// abandoned after one batch leaves no in-flight state behind (the
/// store keeps answering everything correctly, including fresh
/// cursors), and the meter charges only the batches actually fetched —
/// the prefetch statements plus any continuations, never the unfetched
/// remainder. An empty range costs exactly one statement per probed
/// shard, read-side discovery being the documented asymmetry with the
/// free empty `insert_batch`.
#[test]
fn mid_scan_drop_leaks_nothing_and_meters_only_fetched_batches() {
    let wl = generate(&GenConfig::for_length(UpdatePattern::Mix, 300, 7), 300);
    let records = records_from(&wl);
    let containers = containers_of(&records);
    let root = Path::single(wl.target_name);

    // Serial 4-shard store: the prefetch on a straddling scan is one
    // statement per shard; after that, dropping must stop all charges.
    let n4 = ShardedStore::in_memory(ShardedStore::split_points(&containers, 4), true).unwrap();
    // Parallel-executor front over the same layout.
    let par = ShardedStore::in_memory(ShardedStore::split_points(&containers, 4), true)
        .unwrap()
        .with_parallel_executor();
    let e = Engine::in_memory();
    let sql = SqlStore::create(&e, true).unwrap();
    let stores: [(&str, &dyn ProvStore, u64); 3] =
        [("sql", &sql, 1), ("sharded-4", &n4, 4), ("sharded-4-parallel", &par, 4)];
    for (_, store, _) in stores {
        store.insert_batch(&records).unwrap();
    }
    for (name, store, prefetch_statements) in stores {
        let before = sorted(store.all().unwrap());
        store.reset_trips();
        let mut cur = store.scan_loc_prefix(&root, 2).unwrap();
        assert!(cur.next_batch().unwrap().is_some(), "{name}");
        let after_first = store.read_trips();
        assert!(
            (prefetch_statements..=prefetch_statements + 1).contains(&after_first),
            "{name}: first batch cost {after_first} statements"
        );
        drop(cur);
        assert_eq!(store.read_trips(), after_first, "{name}: a drop issues no statements");
        // The store is fully usable afterwards: same contents, working
        // writes, working fresh cursors.
        store.insert(&ProvRecord::insert(Tid(4242), root.child("post-drop"))).unwrap();
        let mut want = before.clone();
        want.push(ProvRecord::insert(Tid(4242), root.child("post-drop")));
        assert_eq!(sorted(store.all().unwrap()), sorted(want), "{name}");
        let redrained = store.scan_loc_prefix(&Path::epsilon(), 64).unwrap().drain().unwrap();
        assert_eq!(redrained.len() as u64, store.len(), "{name}");
        // Empty range: exactly one statement (single-shard route).
        store.reset_trips();
        let mut empty = store.scan_loc_prefix(&"T/zzz/nope".parse().unwrap(), 8).unwrap();
        assert!(empty.next_batch().unwrap().is_none(), "{name}");
        assert_eq!(store.read_trips(), 1, "{name}: empty probe is one statement");
    }
}

/// Cursor-ahead prefetch must not change the statement bill: draining
/// the same straddling scan costs exactly the same read statements and
/// waves on the parallel-executor front (which dispatches each shard's
/// next page to its worker while the current page is being consumed)
/// as on the serial store (which fetches continuations on demand).
#[test]
fn prefetching_cursor_statement_counts_match_serial() {
    let wl = generate(&GenConfig::for_length(UpdatePattern::Mix, 400, 99), 400);
    let records = records_from(&wl);
    let containers = containers_of(&records);
    let root = Path::single(wl.target_name);
    let serial = ShardedStore::in_memory(ShardedStore::split_points(&containers, 4), true).unwrap();
    let parallel = ShardedStore::in_memory(ShardedStore::split_points(&containers, 4), true)
        .unwrap()
        .with_parallel_executor();
    serial.insert_batch(&records).unwrap();
    parallel.insert_batch(&records).unwrap();
    for prefix in [root.clone(), Path::epsilon(), containers[1].clone()] {
        for batch in [1usize, 2, 7, 64] {
            serial.reset_trips();
            parallel.reset_trips();
            let want = drain_checked(serial.scan_loc_prefix(&prefix, batch).unwrap(), batch);
            let got = drain_checked(parallel.scan_loc_prefix(&prefix, batch).unwrap(), batch);
            assert_eq!(got, want, "{prefix} b{batch}: same records in the same order");
            assert_eq!(
                parallel.read_trips(),
                serial.read_trips(),
                "{prefix} b{batch}: prefetch must not change the statement count"
            );
            assert_eq!(
                parallel.read_waves(),
                serial.read_waves(),
                "{prefix} b{batch}: prefetch must not change the wave count"
            );
        }
    }
}

/// The sharded store is a single `Sync` object fed by many writers:
/// concurrent inserts and scans across shard boundaries must never
/// lose, duplicate, or corrupt a record.
#[test]
fn concurrent_inserts_and_scans_across_shards() {
    let containers: Vec<Path> = (1..=8).map(|i| format!("T/c{i}").parse().unwrap()).collect();
    let store = ShardedStore::in_memory(ShardedStore::split_points(&containers, 4), true).unwrap();
    let writers = 4usize;
    let per_writer = 200usize;

    std::thread::scope(|scope| {
        for w in 0..writers {
            let store = &store;
            let containers = &containers;
            scope.spawn(move || {
                for i in 0..per_writer {
                    let loc = containers[(w * per_writer + i) % containers.len()]
                        .child(format!("w{w}"))
                        .child(format!("r{i}"));
                    store.insert(&ProvRecord::insert(Tid(w as u64), loc)).unwrap();
                }
            });
        }
        for _ in 0..2 {
            let store = &store;
            scope.spawn(move || {
                for _ in 0..50 {
                    // Whole-table fan-outs and routed subtree probes
                    // racing the writers: every record read must be
                    // well-formed and in the right subtree.
                    let all = store.by_loc_prefix(&Path::epsilon()).unwrap();
                    assert!(all.len() <= writers * per_writer);
                    let sub = store.by_loc_prefix(&"T/c2".parse().unwrap()).unwrap();
                    assert!(sub.iter().all(|r| r.loc.starts_with(&"T/c2".parse().unwrap())));
                }
            });
        }
    });

    assert_eq!(store.len(), (writers * per_writer) as u64);
    let all = store.all().unwrap();
    assert_eq!(all.len(), writers * per_writer);
    let distinct: BTreeSet<String> = all.iter().map(|r| r.loc.key()).collect();
    assert_eq!(distinct.len(), writers * per_writer, "no record lost or duplicated");
}

/// Multi-producer group commit: several tracker threads enqueue into
/// one pipeline (singles and batches) over a parallel-executor sharded
/// store, racing readers whose implicit flushes drain the queue
/// mid-stream. After the final flush the store must hold every record
/// exactly once and answer like a synchronous oracle.
#[test]
fn multi_producer_pipeline_loses_and_duplicates_nothing() {
    let containers: Vec<Path> = (1..=8).map(|i| format!("T/c{i}").parse().unwrap()).collect();
    let sharded = ShardedStore::in_memory(ShardedStore::split_points(&containers, 4), true)
        .unwrap()
        .with_parallel_executor();
    let pipe = PipelinedStore::spawn(Arc::new(sharded), PipelineConfig::batched(32));
    let oracle = MemStore::new();

    let writers = 4usize;
    let per_writer = 300usize;
    let make = |w: usize, i: usize| {
        let loc =
            containers[(w + i) % containers.len()].child(format!("w{w}")).child(format!("r{i}"));
        ProvRecord::insert(Tid(w as u64), loc)
    };

    std::thread::scope(|scope| {
        for w in 0..writers {
            let pipe = &pipe;
            scope.spawn(move || {
                // Mix the two enqueue paths: singles and small batches.
                let mut i = 0;
                while i < per_writer {
                    if i % 10 == 0 {
                        let batch: Vec<ProvRecord> =
                            (i..(i + 5).min(per_writer)).map(|j| make(w, j)).collect();
                        pipe.insert_batch(&batch).unwrap();
                        i += batch.len();
                    } else {
                        pipe.insert(&make(w, i)).unwrap();
                        i += 1;
                    }
                }
            });
        }
        // Readers force implicit flushes while producers are running.
        for _ in 0..2 {
            let pipe = &pipe;
            scope.spawn(move || {
                for _ in 0..25 {
                    let sub = pipe.by_loc_prefix(&"T/c3".parse().unwrap()).unwrap();
                    assert!(sub.iter().all(|r| r.loc.starts_with(&"T/c3".parse().unwrap())));
                }
            });
        }
    });
    for w in 0..writers {
        for i in 0..per_writer {
            oracle.insert(&make(w, i)).unwrap();
        }
    }

    pipe.flush().unwrap();
    assert_eq!(pipe.pending(), 0);
    assert_eq!(pipe.len(), (writers * per_writer) as u64);
    let mut got = pipe.all().unwrap();
    let mut want = oracle.all().unwrap();
    got.sort();
    want.sort();
    assert_eq!(got, want, "pipeline-fed sharded store matches the synchronous oracle");
    for c in &containers {
        let mut got = pipe.by_loc_prefix(c).unwrap();
        let mut want = oracle.by_loc_prefix(c).unwrap();
        got.sort();
        want.sort();
        assert_eq!(got, want, "prefix {c}");
    }
    for w in 0..writers {
        assert_eq!(pipe.by_tid(Tid(w as u64)).unwrap().len(), per_writer, "writer {w}");
    }
}
