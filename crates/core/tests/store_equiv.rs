//! Equivalence suite: [`ShardedStore`] (N = 1 and N = 4, serial and
//! parallel-executor) and group-commit [`PipelinedStore`] fronts must
//! return the same record sets as an indexed [`SqlStore`] for every
//! [`ProvStore`] method, on a provenance load derived from the seeded
//! workload generator — plus concurrent insert/scan and multi-producer
//! pipeline stress tests across shards.

use cpdb_core::{
    MemStore, PipelineConfig, PipelinedStore, ProvRecord, ProvStore, ShardedStore, SqlStore, Tid,
};
use cpdb_storage::Engine;
use cpdb_tree::Path;
use cpdb_update::AtomicUpdate;
use cpdb_workload::{generate, GenConfig, UpdatePattern, Workload};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Provenance records the seeded workload's script would produce: one
/// record per atomic update (tids grouped in commit-sized runs), plus a
/// child-level record per copy so subtree probes have depth to find.
fn records_from(wl: &Workload) -> Vec<ProvRecord> {
    let mut out = Vec::new();
    for (i, u) in wl.script.iter().enumerate() {
        let tid = Tid(1 + (i / 5) as u64);
        match u {
            AtomicUpdate::Insert { target, label, .. } => {
                out.push(ProvRecord::insert(tid, target.child(*label)));
            }
            AtomicUpdate::Delete { target, label } => {
                out.push(ProvRecord::delete(tid, target.child(*label)));
            }
            AtomicUpdate::Copy { src, target } => {
                out.push(ProvRecord::copy(tid, target.clone(), src.clone()));
                out.push(ProvRecord::copy(tid, target.child("x"), src.child("x")));
            }
        }
    }
    out
}

/// The top-level containers (`T/<label>`) appearing in the records.
fn containers_of(records: &[ProvRecord]) -> Vec<Path> {
    let set: BTreeSet<Path> = records
        .iter()
        .filter(|r| r.loc.len() >= 2)
        .map(|r| Path::from(&r.loc.segments()[..2]))
        .collect();
    set.into_iter().collect()
}

fn sorted(mut v: Vec<ProvRecord>) -> Vec<ProvRecord> {
    v.sort();
    v
}

#[test]
fn sharded_store_matches_sql_store_on_the_seeded_workload() {
    let wl = generate(&GenConfig::for_length(UpdatePattern::Mix, 600, 2006), 600);
    let records = records_from(&wl);
    assert!(records.len() >= 600);
    let containers = containers_of(&records);
    assert!(containers.len() >= 8, "workload must exercise many containers");

    let e1 = Engine::in_memory();
    let oracle = SqlStore::create(&e1, true).unwrap();
    let mem = MemStore::new();
    let n1 = ShardedStore::in_memory(Vec::new(), true).unwrap();
    let n4 = ShardedStore::in_memory(ShardedStore::split_points(&containers, 4), true).unwrap();
    assert_eq!(n1.shard_count(), 1);
    assert_eq!(n4.shard_count(), 4);
    // Pipeline-fed fronts: group-commit over an unsharded SqlStore and
    // over a parallel-executor 4-shard store — writes go through the
    // async queue, reads must still answer exactly like the oracle.
    let e2 = Engine::in_memory();
    let pipe_sql = PipelinedStore::spawn(
        Arc::new(SqlStore::create(&e2, true).unwrap()),
        PipelineConfig::batched(16),
    );
    let pipe_n4 = PipelinedStore::spawn(
        Arc::new(
            ShardedStore::in_memory(ShardedStore::split_points(&containers, 4), true)
                .unwrap()
                .with_parallel_executor(),
        ),
        PipelineConfig::batched(16),
    );

    // Load every store identically: singles and batches interleaved so
    // both insert paths are exercised (batches span shard boundaries).
    for (i, chunk) in records.chunks(7).enumerate() {
        for store in
            [&oracle as &dyn ProvStore, &mem, &n1, &n4, &pipe_sql as &dyn ProvStore, &pipe_n4]
        {
            if i % 2 == 0 {
                store.insert_batch(chunk).unwrap();
            } else {
                for r in chunk {
                    store.insert(r).unwrap();
                }
            }
        }
    }
    pipe_sql.flush().unwrap();
    pipe_n4.flush().unwrap();

    let stores: [(&str, &dyn ProvStore); 5] = [
        ("mem", &mem),
        ("n1", &n1),
        ("n4", &n4),
        ("pipelined-sql", &pipe_sql),
        ("pipelined-sharded-parallel", &pipe_n4),
    ];
    for (name, store) in stores {
        assert_eq!(store.len(), oracle.len(), "{name}: len");
        assert_eq!(sorted(store.all().unwrap()), sorted(oracle.all().unwrap()), "{name}: all");

        let max_tid = 1 + (records.len() / 5) as u64;
        for tid in (0..=max_tid + 1).map(Tid) {
            assert_eq!(
                sorted(store.by_tid(tid).unwrap()),
                sorted(oracle.by_tid(tid).unwrap()),
                "{name}: by_tid {tid:?}"
            );
        }

        // Prefixes: every container, the database root, the empty
        // (whole-table) path, and a miss.
        let mut prefixes = containers.clone();
        prefixes.push(Path::single(wl.target_name));
        prefixes.push(Path::epsilon());
        prefixes.push("T/zzz/nope".parse().unwrap());
        for prefix in &prefixes {
            assert_eq!(
                sorted(store.by_loc_prefix(prefix).unwrap()),
                sorted(oracle.by_loc_prefix(prefix).unwrap()),
                "{name}: by_loc_prefix {prefix}"
            );
            for tid in [Tid(1), Tid(17), Tid(9999)] {
                assert_eq!(
                    sorted(store.by_tid_loc_prefix(tid, prefix).unwrap()),
                    sorted(oracle.by_tid_loc_prefix(tid, prefix).unwrap()),
                    "{name}: by_tid_loc_prefix {tid:?} {prefix}"
                );
            }
        }

        // Point and chain probes at every 13th record's location.
        for r in records.iter().step_by(13) {
            assert_eq!(
                sorted(store.at(r.tid, &r.loc).unwrap()),
                sorted(oracle.at(r.tid, &r.loc).unwrap()),
                "{name}: at"
            );
            assert_eq!(
                sorted(store.by_loc(&r.loc).unwrap()),
                sorted(oracle.by_loc(&r.loc).unwrap()),
                "{name}: by_loc"
            );
            for min_depth in [0usize, 1, 2] {
                assert_eq!(
                    sorted(store.by_loc_chain(&r.loc, min_depth).unwrap()),
                    sorted(oracle.by_loc_chain(&r.loc, min_depth).unwrap()),
                    "{name}: by_loc_chain {min_depth}"
                );
            }
        }
    }
}

/// The sharded store is a single `Sync` object fed by many writers:
/// concurrent inserts and scans across shard boundaries must never
/// lose, duplicate, or corrupt a record.
#[test]
fn concurrent_inserts_and_scans_across_shards() {
    let containers: Vec<Path> = (1..=8).map(|i| format!("T/c{i}").parse().unwrap()).collect();
    let store = ShardedStore::in_memory(ShardedStore::split_points(&containers, 4), true).unwrap();
    let writers = 4usize;
    let per_writer = 200usize;

    std::thread::scope(|scope| {
        for w in 0..writers {
            let store = &store;
            let containers = &containers;
            scope.spawn(move || {
                for i in 0..per_writer {
                    let loc = containers[(w * per_writer + i) % containers.len()]
                        .child(format!("w{w}"))
                        .child(format!("r{i}"));
                    store.insert(&ProvRecord::insert(Tid(w as u64), loc)).unwrap();
                }
            });
        }
        for _ in 0..2 {
            let store = &store;
            scope.spawn(move || {
                for _ in 0..50 {
                    // Whole-table fan-outs and routed subtree probes
                    // racing the writers: every record read must be
                    // well-formed and in the right subtree.
                    let all = store.by_loc_prefix(&Path::epsilon()).unwrap();
                    assert!(all.len() <= writers * per_writer);
                    let sub = store.by_loc_prefix(&"T/c2".parse().unwrap()).unwrap();
                    assert!(sub.iter().all(|r| r.loc.starts_with(&"T/c2".parse().unwrap())));
                }
            });
        }
    });

    assert_eq!(store.len(), (writers * per_writer) as u64);
    let all = store.all().unwrap();
    assert_eq!(all.len(), writers * per_writer);
    let distinct: BTreeSet<String> = all.iter().map(|r| r.loc.key()).collect();
    assert_eq!(distinct.len(), writers * per_writer, "no record lost or duplicated");
}

/// Multi-producer group commit: several tracker threads enqueue into
/// one pipeline (singles and batches) over a parallel-executor sharded
/// store, racing readers whose implicit flushes drain the queue
/// mid-stream. After the final flush the store must hold every record
/// exactly once and answer like a synchronous oracle.
#[test]
fn multi_producer_pipeline_loses_and_duplicates_nothing() {
    let containers: Vec<Path> = (1..=8).map(|i| format!("T/c{i}").parse().unwrap()).collect();
    let sharded = ShardedStore::in_memory(ShardedStore::split_points(&containers, 4), true)
        .unwrap()
        .with_parallel_executor();
    let pipe = PipelinedStore::spawn(Arc::new(sharded), PipelineConfig::batched(32));
    let oracle = MemStore::new();

    let writers = 4usize;
    let per_writer = 300usize;
    let make = |w: usize, i: usize| {
        let loc =
            containers[(w + i) % containers.len()].child(format!("w{w}")).child(format!("r{i}"));
        ProvRecord::insert(Tid(w as u64), loc)
    };

    std::thread::scope(|scope| {
        for w in 0..writers {
            let pipe = &pipe;
            scope.spawn(move || {
                // Mix the two enqueue paths: singles and small batches.
                let mut i = 0;
                while i < per_writer {
                    if i % 10 == 0 {
                        let batch: Vec<ProvRecord> =
                            (i..(i + 5).min(per_writer)).map(|j| make(w, j)).collect();
                        pipe.insert_batch(&batch).unwrap();
                        i += batch.len();
                    } else {
                        pipe.insert(&make(w, i)).unwrap();
                        i += 1;
                    }
                }
            });
        }
        // Readers force implicit flushes while producers are running.
        for _ in 0..2 {
            let pipe = &pipe;
            scope.spawn(move || {
                for _ in 0..25 {
                    let sub = pipe.by_loc_prefix(&"T/c3".parse().unwrap()).unwrap();
                    assert!(sub.iter().all(|r| r.loc.starts_with(&"T/c3".parse().unwrap())));
                }
            });
        }
    });
    for w in 0..writers {
        for i in 0..per_writer {
            oracle.insert(&make(w, i)).unwrap();
        }
    }

    pipe.flush().unwrap();
    assert_eq!(pipe.pending(), 0);
    assert_eq!(pipe.len(), (writers * per_writer) as u64);
    let mut got = pipe.all().unwrap();
    let mut want = oracle.all().unwrap();
    got.sort();
    want.sort();
    assert_eq!(got, want, "pipeline-fed sharded store matches the synchronous oracle");
    for c in &containers {
        let mut got = pipe.by_loc_prefix(c).unwrap();
        let mut want = oracle.by_loc_prefix(c).unwrap();
        got.sort();
        want.sort();
        assert_eq!(got, want, "prefix {c}");
    }
    for w in 0..writers {
        assert_eq!(pipe.by_tid(Tid(w as u64)).unwrap().len(), per_writer, "writer {w}");
    }
}
