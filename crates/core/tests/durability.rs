//! Crash-recovery suite for the durable write pipeline.
//!
//! The acceptance scenario: a [`PipelinedStore`] in
//! [`DurabilityMode::Wal`] is killed mid-`insert_batch` (a
//! [`FaultyBackend`] under the real on-disk table starts failing every
//! I/O) while holding queued, **acknowledged** records. Reopening the
//! same directory and replaying the WAL must recover every
//! acknowledged record exactly once — no loss, no duplicates — and
//! every index and cursor query must match an oracle store rebuilt
//! from the acknowledged stream.

use cpdb_core::{
    DurabilityMode, MemStore, MigrationFailpoint, PipelineConfig, PipelinedStore, ProvRecord,
    ProvStore, ShardedStore, SqlStore, Tid,
};
use cpdb_storage::{
    read_manifest, read_migration_marker, write_migration_marker, Backend, DiskBackend, Engine,
    FaultyBackend, MigrationKind, MigrationMarker, Wal,
};
use cpdb_tree::Path;
use std::path::{Path as FsPath, PathBuf};
use std::sync::Arc;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cpdb-durability-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn p(s: &str) -> Path {
    s.parse().unwrap()
}

/// One record per step, unique `(tid, loc)`, spread over containers.
/// Labels are long-ish so a few hundred records span many heap pages
/// (and a small buffer pool has to hit the backend mid-batch).
fn stream(n: usize) -> Vec<ProvRecord> {
    (0..n)
        .map(|i| {
            let loc = p(&format!("T/c{}/node-{i:04}-{}", i % 7, "x".repeat(80)));
            if i % 3 == 0 {
                ProvRecord::copy(Tid(i as u64), loc, p(&format!("S1/a{}", i % 5)))
            } else {
                ProvRecord::insert(Tid(i as u64), loc)
            }
        })
        .collect()
}

fn sorted(mut v: Vec<ProvRecord>) -> Vec<ProvRecord> {
    v.sort();
    v
}

/// Compares every `ProvStore` probe and cursor of `store` against the
/// `oracle` (same logical content, possibly different physical order —
/// multiset equality where order is not contractual, key order where
/// it is).
fn assert_matches_oracle(store: &dyn ProvStore, oracle: &dyn ProvStore) {
    assert_eq!(sorted(store.all().unwrap()), sorted(oracle.all().unwrap()), "all()");
    assert_eq!(store.len(), oracle.len());
    for r in oracle.all().unwrap() {
        assert_eq!(
            sorted(store.at(r.tid, &r.loc).unwrap()),
            sorted(oracle.at(r.tid, &r.loc).unwrap()),
            "at({:?}, {})",
            r.tid,
            r.loc
        );
        assert_eq!(
            sorted(store.by_tid(r.tid).unwrap()),
            sorted(oracle.by_tid(r.tid).unwrap()),
            "by_tid({:?})",
            r.tid
        );
    }
    for prefix in ["T", "T/c1", "T/c2", "T/c2/n2", "S1", "T/nothing", ""] {
        let prefix = p(prefix);
        assert_eq!(
            sorted(store.by_loc_prefix(&prefix).unwrap()),
            sorted(oracle.by_loc_prefix(&prefix).unwrap()),
            "by_loc_prefix({prefix})"
        );
        assert_eq!(
            sorted(store.by_tid_loc_prefix(Tid(4), &prefix).unwrap()),
            sorted(oracle.by_tid_loc_prefix(Tid(4), &prefix).unwrap()),
            "by_tid_loc_prefix({prefix})"
        );
        // Streaming cursors: key-ordered batches, drained equal.
        for batch in [1usize, 7, usize::MAX] {
            let got = store.scan_loc_prefix(&prefix, batch).unwrap().drain().unwrap();
            assert!(
                got.windows(2).all(|w| w[0].loc.key() <= w[1].loc.key()),
                "cursor key order, prefix {prefix} batch {batch}"
            );
            assert_eq!(
                sorted(got),
                sorted(oracle.by_loc_prefix(&prefix).unwrap()),
                "scan_loc_prefix({prefix}, {batch})"
            );
        }
        assert_eq!(
            sorted(store.by_loc_chain(&prefix.child("x"), 1).unwrap()),
            sorted(oracle.by_loc_chain(&prefix.child("x"), 1).unwrap()),
            "by_loc_chain({prefix}/x)"
        );
    }
}

/// An engine whose `Prov` table pages live on a fault-injected wrapper
/// over real files in `dir` (the sidecar backend stays fault-free so
/// the failure lands in the table I/O of a commit cycle). File names
/// follow the disk-engine convention, so `Engine::on_disk(dir)`
/// reopens the same data afterwards. The tiny buffer pool forces
/// backend traffic on nearly every row insert, so the countdown
/// reliably exhausts **inside** an `insert_batch`.
fn faulty_disk_engine(dir: &FsPath, table_successes: u64) -> Engine {
    let dir = dir.to_path_buf();
    Engine::with_backend(move |name| {
        let disk = DiskBackend::open(dir.join(format!("{name}.tbl"))).expect("open backing file");
        if name == "Prov" {
            Arc::new(FaultyBackend::new(disk, table_successes)) as Arc<dyn Backend>
        } else {
            Arc::new(disk)
        }
    })
    .with_pool_capacity(4)
}

/// The acceptance crash test: FaultyBackend kills the table
/// mid-`insert_batch` with acknowledged records queued; reopen +
/// replay recovers every acknowledged record, exactly once.
#[test]
fn crash_mid_batch_recovers_every_acknowledged_record() {
    let dir = tempdir("crash");
    let records = stream(600);
    let acked: Vec<ProvRecord>;
    {
        // Generous budget for table creation + index builds + the
        // first batches of the stream; small enough that ingest
        // reliably exhausts it mid-batch.
        let engine = faulty_disk_engine(&dir, 60);
        let store: Arc<dyn ProvStore> = Arc::new(SqlStore::create(&engine, true).unwrap());
        let wal = Wal::open(Arc::new(DiskBackend::open(dir.join("prov.wal")).unwrap())).unwrap();
        let pipe = PipelinedStore::spawn_with_durability(
            store,
            PipelineConfig::batched(16),
            DurabilityMode::Wal(wal),
        )
        .unwrap();
        let mut accepted = Vec::new();
        let mut saw_commit_error = false;
        for r in &records {
            // In durable mode an Err can also be a WAL rejection, but
            // the WAL backend here is fault-free: every Err is a
            // parked commit failure, and the call's record was both
            // logged and accepted.
            match pipe.insert(r) {
                Ok(()) => accepted.push(r.clone()),
                Err(_) => {
                    saw_commit_error = true;
                    accepted.push(r.clone());
                }
            }
        }
        assert!(saw_commit_error, "the injected fault must surface mid-ingest");
        assert_eq!(pipe.enqueued(), accepted.len() as u64);
        assert!(pipe.pending() > 0, "acknowledged records are stuck in the queue at crash time");
        assert!(
            pipe.wal_pending().unwrap() > 0,
            "their WAL frames must still be live (not truncated)"
        );
        acked = accepted;
        // `drop(pipe)` = the crash: the committer cannot drain (every
        // backend op fails), dirty pool pages are simply gone.
    }

    // --- Reopen the same directory. --------------------------------
    let engine = Engine::on_disk(&dir).unwrap();
    let store: Arc<dyn ProvStore> = Arc::new(SqlStore::open(&engine, true).unwrap());
    let lost_before_replay = acked.len() as u64 - store.len();
    assert!(lost_before_replay > 0, "the crash must actually have lost acknowledged records");
    let wal = Wal::open(Arc::new(DiskBackend::open(dir.join("prov.wal")).unwrap())).unwrap();
    let pipe = PipelinedStore::spawn_with_durability(
        store,
        PipelineConfig::batched(16),
        DurabilityMode::Wal(wal),
    )
    .unwrap();
    assert!(pipe.replayed() >= lost_before_replay, "replay must cover every lost record");
    assert_eq!(pipe.len(), acked.len() as u64, "recovered exactly: no loss, no duplicates");
    assert_eq!(pipe.wal_pending(), Some(0), "recovery truncated the replayed frames");

    // Every probe and cursor matches an oracle rebuilt from the
    // acknowledged stream.
    let oracle = MemStore::new();
    for r in &acked {
        oracle.insert(r).unwrap();
    }
    assert_matches_oracle(&pipe, &oracle);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Double crash: a second failure during the post-recovery run leaves
/// the log replayable again — recovery composes.
#[test]
fn second_crash_after_recovery_still_recovers() {
    let dir = tempdir("crash-twice");
    let first = stream(120);
    {
        let engine = faulty_disk_engine(&dir, 30);
        let store: Arc<dyn ProvStore> = Arc::new(SqlStore::create(&engine, true).unwrap());
        let wal = Wal::open(Arc::new(DiskBackend::open(dir.join("prov.wal")).unwrap())).unwrap();
        let pipe = PipelinedStore::spawn_with_durability(
            store,
            PipelineConfig::batched(8),
            DurabilityMode::Wal(wal),
        )
        .unwrap();
        for r in &first {
            let _ = pipe.insert(r);
        }
    }
    // Second run: recover, append more, crash again mid-batch.
    let second: Vec<ProvRecord> = (0..80)
        .map(|i| ProvRecord::insert(Tid(1_000 + i as u64), p(&format!("T/late/m{i}"))))
        .collect();
    {
        // Enough budget to reopen (recount + index rebuilds) and
        // replay, then fail again partway through the second stream.
        let engine = faulty_disk_engine(&dir, 300);
        let store: Arc<dyn ProvStore> = Arc::new(SqlStore::open(&engine, true).unwrap());
        let wal = Wal::open(Arc::new(DiskBackend::open(dir.join("prov.wal")).unwrap())).unwrap();
        let pipe = PipelinedStore::spawn_with_durability(
            store,
            PipelineConfig::batched(8),
            DurabilityMode::Wal(wal),
        )
        .unwrap();
        for r in &second {
            let _ = pipe.insert(r);
        }
    }
    // Final reopen: everything acknowledged across both lifetimes.
    let engine = Engine::on_disk(&dir).unwrap();
    let store: Arc<dyn ProvStore> = Arc::new(SqlStore::open(&engine, true).unwrap());
    let wal = Wal::open(Arc::new(DiskBackend::open(dir.join("prov.wal")).unwrap())).unwrap();
    let pipe = PipelinedStore::spawn_with_durability(
        store,
        PipelineConfig::batched(8),
        DurabilityMode::Wal(wal),
    )
    .unwrap();
    let oracle = MemStore::new();
    for r in first.iter().chain(&second) {
        oracle.insert(r).unwrap();
    }
    assert_eq!(pipe.len(), oracle.len(), "no loss, no duplicates across two crashes");
    assert_matches_oracle(&pipe, &oracle);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A sharded, pipelined, parallel deployment survives a clean restart
/// whole: per-shard on-disk engines, manifest-recovered routing, WAL
/// drained, persisted indexes loaded.
#[test]
fn sharded_pipelined_parallel_store_survives_restart_whole() {
    let dir = tempdir("sharded");
    let containers: Vec<Path> = (1..=8).map(|i| p(&format!("T/c{i}"))).collect();
    let boundaries = ShardedStore::split_points(&containers, 4);
    let records = stream(240);
    {
        let sharded = Arc::new(
            ShardedStore::on_disk(dir.join("store"), boundaries.clone(), true)
                .unwrap()
                .with_parallel_executor(),
        );
        let wal = Wal::open(Arc::new(DiskBackend::open(dir.join("prov.wal")).unwrap())).unwrap();
        let pipe = PipelinedStore::spawn_with_durability(
            sharded,
            PipelineConfig::batched(32),
            DurabilityMode::Wal(wal),
        )
        .unwrap();
        for r in &records {
            pipe.insert(r).unwrap();
        }
        pipe.checkpoint().unwrap();
        assert_eq!(pipe.wal_pending(), Some(0), "clean shutdown leaves no live frames");
    }
    // Restart: the manifest restores the routing table, every shard
    // reopens with persisted indexes, the WAL has nothing to replay.
    let sharded = ShardedStore::open_disk(dir.join("store")).unwrap();
    assert_eq!(sharded.shard_count(), boundaries.len() + 1);
    for i in 0..sharded.shard_count() {
        let meter = sharded.shard_engine(i).meter().clone();
        assert!(
            meter.page_reads() > 0,
            "shard {i} must load its indexes from the sidecar, not rebuild"
        );
        assert_eq!(meter.count(), 0, "shard {i}: reopening issues no statements");
    }
    let sharded = Arc::new(sharded.with_parallel_executor());
    let wal = Wal::open(Arc::new(DiskBackend::open(dir.join("prov.wal")).unwrap())).unwrap();
    let pipe = PipelinedStore::spawn_with_durability(
        sharded,
        PipelineConfig::batched(32),
        DurabilityMode::Wal(wal),
    )
    .unwrap();
    assert_eq!(pipe.replayed(), 0, "nothing to replay after a clean shutdown");
    let oracle = MemStore::new();
    for r in &records {
        oracle.insert(r).unwrap();
    }
    assert_matches_oracle(&pipe, &oracle);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A crash of the sharded deployment mid-stream: the WAL replays into
/// the reopened per-shard engines and the router dedups per shard.
#[test]
fn sharded_crash_recovers_through_manifest_and_wal() {
    let dir = tempdir("sharded-crash");
    let containers: Vec<Path> = (1..=8).map(|i| p(&format!("T/c{i}"))).collect();
    let boundaries = ShardedStore::split_points(&containers, 4);
    let records = stream(200);
    {
        let sharded = Arc::new(
            ShardedStore::on_disk(dir.join("store"), boundaries, true)
                .unwrap()
                .with_parallel_executor(),
        );
        let wal = Wal::open(Arc::new(DiskBackend::open(dir.join("prov.wal")).unwrap())).unwrap();
        let pipe = PipelinedStore::spawn_with_durability(
            sharded,
            PipelineConfig::batched(64),
            DurabilityMode::Wal(wal),
        )
        .unwrap();
        for r in &records {
            pipe.insert(r).unwrap();
        }
        // No flush, no checkpoint: whatever the committer has not yet
        // drained at drop time is covered only by the WAL. (Drop
        // drains best-effort here since the backends are healthy, but
        // the protocol may leave a live tail; either way the reopened
        // store must end up exactly equal to the oracle.)
    }
    let sharded =
        Arc::new(ShardedStore::open_disk(dir.join("store")).unwrap().with_parallel_executor());
    let wal = Wal::open(Arc::new(DiskBackend::open(dir.join("prov.wal")).unwrap())).unwrap();
    let pipe = PipelinedStore::spawn_with_durability(
        sharded,
        PipelineConfig::batched(64),
        DurabilityMode::Wal(wal),
    )
    .unwrap();
    let oracle = MemStore::new();
    for r in &records {
        oracle.insert(r).unwrap();
    }
    assert_eq!(pipe.len(), oracle.len(), "no loss, no duplicates");
    assert_matches_oracle(&pipe, &oracle);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The Drop-ordering regression (satellite of the coalesced-sync PR):
/// a pipeline dropped while a commit error is parked must truncate
/// **nothing** past the committed watermark — every acknowledged but
/// uncommitted record keeps its live WAL frame through the shutdown,
/// and a healthy reopen recovers all of them.
#[test]
fn drop_with_parked_error_truncates_nothing_past_committed() {
    let dir = tempdir("drop-parked");
    let records = stream(300);
    let enqueued;
    let committed;
    let mut extra = Vec::new();
    {
        // Enough budget that early batches commit (advancing the
        // committed watermark and truncating their frames), then the
        // table fails forever: a commit error parks and stays parked
        // through the drop.
        let engine = faulty_disk_engine(&dir, 80);
        let store: Arc<dyn ProvStore> = Arc::new(SqlStore::create(&engine, true).unwrap());
        let wal = Wal::open(Arc::new(DiskBackend::open(dir.join("prov.wal")).unwrap())).unwrap();
        let pipe = PipelinedStore::spawn_with_durability(
            store,
            PipelineConfig::batched(16),
            DurabilityMode::Wal(wal),
        )
        .unwrap();
        let mut saw_error = false;
        for r in &records {
            saw_error |= pipe.insert(r).is_err();
        }
        // The committer may lag the producers: keep nudging (each
        // insert surfaces a parked error, and its own record is
        // accepted and WAL-covered) until the fault shows up.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !saw_error {
            assert!(std::time::Instant::now() < deadline, "injected fault never surfaced");
            let r = ProvRecord::insert(Tid(50_000 + extra.len() as u64), p("T/c1/nudge"));
            saw_error = pipe.insert(&r).is_err();
            extra.push(r);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        enqueued = pipe.enqueued();
        committed = pipe.committed();
        assert!(committed > 0, "some early batches must have committed");
        assert!(enqueued > committed, "acknowledged records must be stuck behind the error");
        // Drop with the error still parked: the committer must not
        // retry-drain (the backend is dead) and must not touch the
        // log past the committed watermark.
    }
    let wal = Wal::open(Arc::new(DiskBackend::open(dir.join("prov.wal")).unwrap())).unwrap();
    assert!(
        wal.pending_count().unwrap() >= enqueued - committed,
        "every uncommitted acknowledged record keeps a live frame: \
         {} frames for {} uncommitted",
        wal.pending_count().unwrap(),
        enqueued - committed
    );
    // Healthy reopen: replay restores exactly the acknowledged stream.
    let engine = Engine::on_disk(&dir).unwrap();
    let store: Arc<dyn ProvStore> = Arc::new(SqlStore::open(&engine, true).unwrap());
    let pipe = PipelinedStore::spawn_with_durability(
        store,
        PipelineConfig::batched(16),
        DurabilityMode::Wal(wal),
    )
    .unwrap();
    let want: Vec<ProvRecord> = records.into_iter().chain(extra).collect();
    assert_eq!(pipe.len(), want.len() as u64, "no loss, no duplicates");
    assert_eq!(sorted(pipe.all().unwrap()), sorted(want));
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Multi-producer coalesced commits under fault injection: N producer
/// threads share one durable pipeline whose WAL backend dies mid-run
/// — inside some leader's sync window, with followers waiting on the
/// watermark — and whose table also fails. On reopen, every record a
/// producer got an `Ok` for is recovered, and nothing is duplicated.
#[test]
fn concurrent_producers_crash_in_sync_window_recover_all_acked() {
    let dir = tempdir("multi-producer");
    const THREADS: usize = 4;
    const PER_THREAD: usize = 60;
    let mut acked: Vec<ProvRecord> = Vec::new();
    let mut wal_failures = 0usize;
    {
        let engine = faulty_disk_engine(&dir, 60);
        let store: Arc<dyn ProvStore> = Arc::new(SqlStore::create(&engine, true).unwrap());
        // The WAL's own backend fails after a budget spent mid-run:
        // whichever producer is leader at that point fails its sync,
        // and the waiting followers retry and fail as leaders too.
        let wal_disk = DiskBackend::open(dir.join("prov.wal")).unwrap();
        let wal = Wal::open(Arc::new(FaultyBackend::new(wal_disk, 150))).unwrap();
        let pipe = PipelinedStore::spawn_with_durability(
            store,
            PipelineConfig::batched(16),
            DurabilityMode::Wal(wal),
        )
        .unwrap();
        let results: Vec<(Vec<ProvRecord>, usize)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..THREADS)
                .map(|t| {
                    let pipe = &pipe;
                    s.spawn(move || {
                        let mut ok = Vec::new();
                        let mut errs = 0;
                        for i in 0..PER_THREAD {
                            let r = ProvRecord::insert(
                                Tid((t * 1_000 + i) as u64),
                                p(&format!("T/c{t}/m{i:03}")),
                            );
                            match pipe.insert(&r) {
                                Ok(()) => ok.push(r),
                                Err(_) => errs += 1,
                            }
                        }
                        (ok, errs)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (ok, errs) in results {
            acked.extend(ok);
            wal_failures += errs;
        }
        assert!(wal_failures > 0, "the WAL fault must surface to some producer");
        assert!(!acked.is_empty(), "some records must have been acknowledged before the fault");
        // Drop = crash: the dead table never drained the queue.
    }
    // Reopen healthy (the same files, no fault wrappers).
    let engine = Engine::on_disk(&dir).unwrap();
    let store: Arc<dyn ProvStore> = Arc::new(SqlStore::open(&engine, true).unwrap());
    let wal = Wal::open(Arc::new(DiskBackend::open(dir.join("prov.wal")).unwrap())).unwrap();
    let pipe = PipelinedStore::spawn_with_durability(
        store,
        PipelineConfig::batched(16),
        DurabilityMode::Wal(wal),
    )
    .unwrap();
    let recovered = sorted(pipe.all().unwrap());
    // No duplicates: every sent record is distinct, so equal neighbors
    // would mean a double-delivered frame survived the dedup.
    assert!(
        recovered.windows(2).all(|w| w[0] != w[1]),
        "replay must not double-deliver any record"
    );
    // Every acknowledged record survives the crash.
    for r in &acked {
        assert!(recovered.binary_search(r).is_ok(), "acked record lost: {:?} @ {}", r.tid, r.loc);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Replay dedup is record-equality within a `(tid, loc)` probe, not
/// blanket first-frame-wins: two *distinct* acknowledged records at
/// the same `(tid, loc)`, and a genuinely repeated record, all
/// survive recovery — only the crash-window double-delivery of an
/// already-committed copy is suppressed.
#[test]
fn replay_preserves_distinct_and_repeated_records_at_same_tid_loc() {
    let dir = tempdir("dedup");
    let r1 = ProvRecord::insert(Tid(7), p("T/dup"));
    let r2 = ProvRecord::copy(Tid(7), p("T/dup"), p("S1/src")); // same (tid, loc), different record
    let r3 = r1.clone(); // the stream genuinely repeats r1
    {
        // As in the wal-covers test: the countdown is exhausted by
        // creation + its checkpoint, so no batch ever commits and all
        // three frames stay live.
        let engine = faulty_disk_engine(&dir, 4);
        let store: Arc<dyn ProvStore> = Arc::new(SqlStore::create(&engine, true).unwrap());
        store.checkpoint().unwrap();
        let wal = Wal::open(Arc::new(DiskBackend::open(dir.join("prov.wal")).unwrap())).unwrap();
        let pipe = PipelinedStore::spawn_with_durability(
            store,
            PipelineConfig::batched(1_000),
            DurabilityMode::Wal(wal),
        )
        .unwrap();
        for r in [&r1, &r2, &r3] {
            let _ = pipe.insert(r);
        }
        assert_eq!(pipe.wal_pending(), Some(3));
    }
    // Reopen over a store that already holds ONE copy of r1 — as if
    // the crash caught r1 after the table commit but before the WAL
    // truncation.
    let inner = Arc::new(MemStore::new());
    inner.insert(&r1).unwrap();
    let wal = Wal::open(Arc::new(DiskBackend::open(dir.join("prov.wal")).unwrap())).unwrap();
    let pipe = PipelinedStore::spawn_with_durability(
        inner.clone(),
        PipelineConfig::batched(1_000),
        DurabilityMode::Wal(wal),
    )
    .unwrap();
    assert_eq!(pipe.replayed(), 2, "r2 and the repeated r1 replay; the committed copy does not");
    let got = sorted(inner.all().unwrap());
    let want = sorted(vec![r1.clone(), r2, r3]);
    assert_eq!(got, want, "no acknowledged record lost, no committed record doubled");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The WAL append happens before the ack: killing the process between
/// enqueue and commit can lose nothing that `insert` returned `Ok`
/// for. (Simulated by never starting a drain: batch size far above
/// the stream length, then dropping with an un-drainable inner.)
#[test]
fn wal_covers_records_the_committer_never_saw() {
    let dir = tempdir("wal-covers");
    let records = stream(30);
    {
        // The countdown covers exactly table creation (allocate +
        // fetch) and the creation checkpoint (write-back + sync):
        // the very first I/O of the drop-time commit fails, so no
        // batch ever reaches the table and the WAL tail must cover
        // everything acknowledged.
        let engine = faulty_disk_engine(&dir, 4);
        let store: Arc<dyn ProvStore> = Arc::new(SqlStore::create(&engine, true).unwrap());
        store.checkpoint().unwrap();
        let wal = Wal::open(Arc::new(DiskBackend::open(dir.join("prov.wal")).unwrap())).unwrap();
        let pipe = PipelinedStore::spawn_with_durability(
            store,
            PipelineConfig::batched(1_000),
            DurabilityMode::Wal(wal),
        )
        .unwrap();
        for r in &records {
            let _ = pipe.insert(r);
        }
        assert_eq!(pipe.wal_pending(), Some(records.len() as u64));
    }
    let engine = Engine::on_disk(&dir).unwrap();
    let store: Arc<dyn ProvStore> = Arc::new(SqlStore::open(&engine, true).unwrap());
    assert_eq!(store.len(), 0, "nothing ever committed");
    let wal = Wal::open(Arc::new(DiskBackend::open(dir.join("prov.wal")).unwrap())).unwrap();
    let pipe = PipelinedStore::spawn_with_durability(
        store,
        PipelineConfig::batched(1_000),
        DurabilityMode::Wal(wal),
    )
    .unwrap();
    assert_eq!(pipe.replayed(), records.len() as u64);
    assert_eq!(sorted(pipe.all().unwrap()), sorted(records));
    std::fs::remove_dir_all(&dir).unwrap();
}

// --- Migration crash suite: shard splits and merges killed at every
// --- protocol stage must reopen on exactly the old or the new
// --- generation — never a torn hybrid, never a lost or doubled row.

/// Median encoded key of the records shard `i` currently owns — a
/// split boundary strictly inside its range whenever the shard holds
/// at least two distinct keys.
fn median_key(store: &ShardedStore, shard: usize) -> Option<String> {
    let mut keys: Vec<String> =
        store.shard(shard).all().unwrap().iter().map(|r| r.loc.key()).collect();
    keys.sort();
    keys.dedup();
    if keys.len() < 2 {
        return None;
    }
    Some(keys[keys.len() / 2].clone())
}

/// A checkpointed 4-shard on-disk deployment loaded with `stream(240)`,
/// plus the oracle of its contents.
fn seeded_sharded(root: &FsPath) -> (ShardedStore, MemStore) {
    let containers: Vec<Path> = (1..=8).map(|i| p(&format!("T/c{i}"))).collect();
    let boundaries = ShardedStore::split_points(&containers, 4);
    let store = ShardedStore::on_disk(root, boundaries, true).unwrap();
    let records = stream(240);
    store.insert_batch(&records).unwrap();
    store.checkpoint().unwrap();
    let oracle = MemStore::new();
    for r in &records {
        oracle.insert(r).unwrap();
    }
    (store, oracle)
}

/// Directories named `shard-*` under `root` — after recovery this must
/// equal the manifest's shard list exactly (no half-built leftovers).
fn shard_dirs_on_disk(root: &FsPath) -> usize {
    std::fs::read_dir(root)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| {
            e.file_name().to_string_lossy().starts_with("shard-")
                && e.file_type().map(|t| t.is_dir()).unwrap_or(false)
        })
        .count()
}

/// A split killed (a) mid-subrange-copy, (b) after the copy but before
/// the manifest flip, (c) mid-write of the new manifest slot: none of
/// the three landed the flip durably, so reopen must come back on the
/// **old** generation with the old layout and every record intact —
/// the half-copied destination is swept, the torn slot ignored.
#[test]
fn split_killed_at_each_stage_reopens_on_the_old_generation() {
    for (tag, fp) in [
        ("mid-copy", MigrationFailpoint::MidCopy),
        ("before-flip", MigrationFailpoint::BeforeFlip),
        ("mid-manifest", MigrationFailpoint::MidManifestWrite),
    ] {
        let dir = tempdir(&format!("split-{tag}"));
        let root = dir.join("store");
        {
            let (store, _) = seeded_sharded(&root);
            let boundary = median_key(&store, 0).expect("shard 0 holds many keys");
            let err = store.split_shard_with_failpoint(0, boundary, fp);
            assert!(err.is_err(), "{tag}: the injected kill must surface");
            assert!(
                read_migration_marker(&root).unwrap().is_some(),
                "{tag}: the crash leaves the migration marker behind"
            );
            // `drop(store)` = the kill: no purge, no marker cleanup.
        }
        let store = ShardedStore::open_disk(&root).unwrap();
        assert_eq!(store.generation(), 0, "{tag}: reopen lands on the old generation");
        assert_eq!(store.shard_count(), 4, "{tag}: old layout");
        assert!(
            read_migration_marker(&root).unwrap().is_none(),
            "{tag}: recovery clears the marker"
        );
        assert_eq!(
            shard_dirs_on_disk(&root),
            4,
            "{tag}: the aborted destination directory is swept"
        );
        let oracle = MemStore::new();
        for r in &stream(240) {
            oracle.insert(r).unwrap();
        }
        assert_matches_oracle(&store, &oracle);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// The same three kills during a merge. Mid-copy is the sharp case:
/// the destination is a **live** shard already in the routing table,
/// holding a partial copy of its neighbour's subrange at crash time —
/// recovery must scrub exactly that subrange (the shard owns no keys
/// of its own there) so no row comes back doubled.
#[test]
fn merge_killed_at_each_stage_reopens_on_the_old_generation() {
    for (tag, fp) in [
        ("mid-copy", MigrationFailpoint::MidCopy),
        ("before-flip", MigrationFailpoint::BeforeFlip),
        ("mid-manifest", MigrationFailpoint::MidManifestWrite),
    ] {
        let dir = tempdir(&format!("merge-{tag}"));
        let root = dir.join("store");
        {
            let (store, _) = seeded_sharded(&root);
            let err = store.merge_shards_with_failpoint(1, fp);
            assert!(err.is_err(), "{tag}: the injected kill must surface");
            assert!(read_migration_marker(&root).unwrap().is_some(), "{tag}: marker left");
        }
        let store = ShardedStore::open_disk(&root).unwrap();
        assert_eq!(store.generation(), 0, "{tag}: reopen lands on the old generation");
        assert_eq!(store.shard_count(), 4, "{tag}: both shards of the pair survive");
        assert!(read_migration_marker(&root).unwrap().is_none(), "{tag}: marker cleared");
        assert_eq!(shard_dirs_on_disk(&root), 4, "{tag}");
        let oracle = MemStore::new();
        for r in &stream(240) {
            oracle.insert(r).unwrap();
        }
        assert_matches_oracle(&store, &oracle);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// The committed side of recovery: the manifest flip landed, but the
/// process died **before the source purge and marker cleanup** — the
/// widest window in which the moved subrange exists on both sides.
/// Reopen must keep the new generation and finish the purge, so every
/// routed and fan-out probe sees each record exactly once.
#[test]
fn split_killed_after_flip_before_purge_finishes_on_the_new_generation() {
    let dir = tempdir("split-post-flip");
    let root = dir.join("store");
    {
        let (store, _) = seeded_sharded(&root);
        let boundary = median_key(&store, 0).unwrap();
        store.split_shard(0, boundary).unwrap();
        assert_eq!(store.generation(), 1);
    }
    // Reconstruct the crash window on disk: re-insert the moved
    // subrange into the source (its purge "never ran") and put the
    // marker back with the generation the flip reached.
    let m = read_manifest(&root).unwrap().unwrap();
    assert_eq!(m.generation, 1);
    let (src_dir, dst_dir) = (m.shard_dirs[0].clone(), m.shard_dirs[1].clone());
    let (lo, hi) = (m.boundaries[0].clone(), m.boundaries.get(1).cloned());
    {
        let dst_engine = Engine::on_disk(root.join(&dst_dir)).unwrap();
        let moved = SqlStore::open(&dst_engine, m.indexed).unwrap().all().unwrap();
        assert!(!moved.is_empty(), "the split must actually have moved rows");
        let src_engine = Engine::on_disk(root.join(&src_dir)).unwrap();
        let src = SqlStore::open(&src_engine, m.indexed).unwrap();
        src.insert_batch(&moved).unwrap();
        src.checkpoint().unwrap();
    }
    write_migration_marker(
        &root,
        &MigrationMarker {
            target_generation: 1,
            kind: MigrationKind::Split,
            src_dir,
            dst_dir,
            lo,
            hi,
        },
    )
    .unwrap();

    let store = ShardedStore::open_disk(&root).unwrap();
    assert_eq!(store.generation(), 1, "the landed flip is kept, not rolled back");
    assert_eq!(store.shard_count(), 5);
    assert!(read_migration_marker(&root).unwrap().is_none());
    let oracle = MemStore::new();
    for r in &stream(240) {
        oracle.insert(r).unwrap();
    }
    // Doubled rows would fail the multiset comparison inside.
    assert_matches_oracle(&store, &oracle);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Clean splits and merges survive a restart whole: the manifest
/// carries the new routing table across the reopen, and the migrated
/// shards come back from their own directories with indexes intact.
#[test]
fn completed_split_and_merge_persist_across_reopen() {
    let dir = tempdir("migrate-clean");
    let root = dir.join("store");
    {
        let (store, _) = seeded_sharded(&root);
        let boundary = median_key(&store, 0).unwrap();
        store.split_shard(0, boundary).unwrap();
        assert!(read_migration_marker(&root).unwrap().is_none(), "success clears the marker");
    }
    let oracle = MemStore::new();
    for r in &stream(240) {
        oracle.insert(r).unwrap();
    }
    let store = ShardedStore::open_disk(&root).unwrap();
    assert_eq!((store.generation(), store.shard_count()), (1, 5), "split persisted");
    assert_matches_oracle(&store, &oracle);
    store.merge_shards(0).unwrap();
    drop(store);
    let store = ShardedStore::open_disk(&root).unwrap();
    assert_eq!((store.generation(), store.shard_count()), (2, 4), "merge persisted");
    assert_eq!(shard_dirs_on_disk(&root), 4, "the absorbed shard's directory is gone");
    assert_matches_oracle(&store, &oracle);
    std::fs::remove_dir_all(&dir).unwrap();
}
