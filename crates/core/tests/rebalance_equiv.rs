//! Rebalancing equivalence suite: online shard splits and merges must
//! be invisible to every [`ProvStore`] probe. The full probe/cursor
//! matrix — `all`, `by_tid`, `by_loc`, `at`, prefix probes, chain
//! probes, and streaming cursors at several batch sizes — is captured
//! against a synchronous [`SqlStore`] oracle before any migration,
//! re-checked bit for bit after a split and again after the reverse
//! merge, at 1→2 and 4→8 shards, on the seeded 600-step workload.
//! Concurrent producers run *through* a split (oracle-checked: no
//! record lost, none duplicated), on both the serial and the
//! parallel-executor fronts.

use cpdb_core::{ProvRecord, ProvStore, ShardedStore, SqlStore, Tid};
use cpdb_storage::Engine;
use cpdb_tree::Path;
use cpdb_update::AtomicUpdate;
use cpdb_workload::{generate, GenConfig, UpdatePattern, Workload};
use std::collections::BTreeSet;

/// Provenance records of the seeded workload's script (tids grouped in
/// commit-sized runs, a child-level record per copy — the same stream
/// as `store_equiv.rs`).
fn records_from(wl: &Workload) -> Vec<ProvRecord> {
    let mut out = Vec::new();
    for (i, u) in wl.script.iter().enumerate() {
        let tid = Tid(1 + (i / 5) as u64);
        match u {
            AtomicUpdate::Insert { target, label, .. } => {
                out.push(ProvRecord::insert(tid, target.child(*label)));
            }
            AtomicUpdate::Delete { target, label } => {
                out.push(ProvRecord::delete(tid, target.child(*label)));
            }
            AtomicUpdate::Copy { src, target } => {
                out.push(ProvRecord::copy(tid, target.clone(), src.clone()));
                out.push(ProvRecord::copy(tid, target.child("x"), src.child("x")));
            }
        }
    }
    out
}

/// The top-level containers (`T/<label>`) appearing in the records.
fn containers_of(records: &[ProvRecord]) -> Vec<Path> {
    let set: BTreeSet<Path> = records
        .iter()
        .filter(|r| r.loc.len() >= 2)
        .map(|r| Path::from(&r.loc.segments()[..2]))
        .collect();
    set.into_iter().collect()
}

fn sorted(mut v: Vec<ProvRecord>) -> Vec<ProvRecord> {
    v.sort();
    v
}

/// The whole probe/cursor matrix of a store, as one comparable value.
/// Every sub-result is sorted so the comparison is order-insensitive
/// (shard layout changes the concatenation order of fan-outs) but
/// content-exact.
fn probe_matrix(
    store: &dyn ProvStore,
    records: &[ProvRecord],
    containers: &[Path],
    root: &Path,
) -> Vec<Vec<ProvRecord>> {
    let mut out = Vec::new();
    out.push(sorted(store.all().unwrap()));
    let max_tid = 1 + (records.len() / 5) as u64;
    for tid in (0..=max_tid + 1).map(Tid) {
        out.push(sorted(store.by_tid(tid).unwrap()));
    }
    let mut prefixes: Vec<Path> = containers.to_vec();
    prefixes.push(root.clone());
    prefixes.push(Path::epsilon());
    prefixes.push("T/zzz/nope".parse().unwrap());
    for prefix in &prefixes {
        out.push(sorted(store.by_loc_prefix(prefix).unwrap()));
        for tid in [Tid(1), Tid(17), Tid(9999)] {
            out.push(sorted(store.by_tid_loc_prefix(tid, prefix).unwrap()));
        }
        for batch in [1usize, 7, usize::MAX] {
            let cur = store.scan_loc_prefix(prefix, batch).unwrap();
            out.push(sorted(cur.drain().unwrap()));
            let cur = store.scan_tid_loc_prefix(Tid(1), prefix, batch).unwrap();
            out.push(sorted(cur.drain().unwrap()));
        }
    }
    for r in records.iter().step_by(13) {
        out.push(sorted(store.at(r.tid, &r.loc).unwrap()));
        out.push(sorted(store.by_loc(&r.loc).unwrap()));
        out.push(sorted(store.by_loc_chain(&r.loc, 1).unwrap()));
    }
    out
}

/// Median encoded key of the records a shard currently owns, to use as
/// a split boundary (strictly inside the shard's range as long as the
/// shard holds two distinct keys).
fn median_key(store: &ShardedStore, shard: usize) -> Option<String> {
    let mut keys: Vec<String> =
        store.shard(shard).all().unwrap().iter().map(|r| r.loc.key()).collect();
    keys.sort();
    keys.dedup();
    if keys.len() < 2 {
        return None;
    }
    Some(keys[keys.len() / 2].clone())
}

/// Splits every shard of `store` at its own median key (descending
/// index order, so earlier indexes stay valid), doubling the shard
/// count; returns how many splits happened.
fn split_all(store: &ShardedStore) -> usize {
    let n = store.shard_count();
    let mut splits = 0;
    for shard in (0..n).rev() {
        if let Some(boundary) = median_key(store, shard) {
            store.split_shard(shard, boundary).unwrap();
            splits += 1;
        }
    }
    splits
}

/// Merges shard pairs back (descending left index), halving the count.
fn merge_all(store: &ShardedStore, splits: usize) {
    let mut left = store.shard_count() - 2;
    for _ in 0..splits {
        store.merge_shards(left).unwrap();
        left = left.saturating_sub(2);
    }
}

#[test]
fn probe_matrix_survives_split_and_merge_at_one_and_four_shards() {
    let wl = generate(&GenConfig::for_length(UpdatePattern::Mix, 600, 2006), 600);
    let records = records_from(&wl);
    assert!(records.len() >= 600);
    let containers = containers_of(&records);

    let engine = Engine::in_memory();
    let oracle = SqlStore::create(&engine, true).unwrap();
    oracle.insert_batch(&records).unwrap();
    let root = Path::single(wl.target_name);
    let want = probe_matrix(&oracle, &records, &containers, &root);

    // 1 → 2 and 4 → 8, serial and parallel-executor fronts.
    for (shards, parallel) in [(1usize, false), (4, false), (4, true)] {
        let boundaries =
            if shards == 1 { Vec::new() } else { ShardedStore::split_points(&containers, shards) };
        let store = ShardedStore::in_memory(boundaries, true).unwrap();
        let store = if parallel { store.with_parallel_executor() } else { store };
        let name = format!("{shards}-shard{}", if parallel { "-parallel" } else { "" });
        store.insert_batch(&records).unwrap();
        assert_eq!(
            probe_matrix(&store, &records, &containers, &root),
            want,
            "{name}: matrix before any migration"
        );

        let before = store.shard_count();
        let splits = split_all(&store);
        assert!(splits >= 1, "{name}: at least one shard must be splittable");
        assert_eq!(store.shard_count(), before + splits, "{name}: split grew the layout");
        assert_eq!(store.generation(), splits as u64, "{name}: each split bumps the generation");
        assert_eq!(
            probe_matrix(&store, &records, &containers, &root),
            want,
            "{name}: matrix after splitting every shard"
        );

        merge_all(&store, splits);
        assert_eq!(store.shard_count(), before, "{name}: merges restored the layout");
        assert_eq!(store.generation(), 2 * splits as u64, "{name}: each merge bumps too");
        assert_eq!(
            probe_matrix(&store, &records, &containers, &root),
            want,
            "{name}: matrix after merging back"
        );
    }
}

/// Concurrent producers keep inserting while the main thread splits
/// (and then merges) shards under them. Every accepted record must be
/// present exactly once afterwards — the cut-over window blocks
/// writers briefly but must never drop or double-apply one.
#[test]
fn concurrent_producers_survive_splits_and_merges() {
    let containers: Vec<Path> = (1..=8).map(|i| format!("T/c{i}").parse().unwrap()).collect();
    for parallel in [false, true] {
        let store =
            ShardedStore::in_memory(ShardedStore::split_points(&containers, 4), true).unwrap();
        let store = if parallel { store.with_parallel_executor() } else { store };
        let writers = 4usize;
        let per_writer = 250usize;
        let make = |w: usize, i: usize| {
            let loc = containers[(w + i) % containers.len()]
                .child(format!("w{w}"))
                .child(format!("r{i:04}"));
            ProvRecord::insert(Tid(w as u64), loc)
        };

        std::thread::scope(|scope| {
            for w in 0..writers {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..per_writer {
                        store.insert(&make(w, i)).unwrap();
                    }
                });
            }
            // A reader racing the migrations: routed and fan-out
            // probes must always see well-formed subtrees.
            {
                let store = &store;
                scope.spawn(move || {
                    for _ in 0..40 {
                        let sub = store.by_loc_prefix(&"T/c3".parse().unwrap()).unwrap();
                        assert!(sub.iter().all(|r| r.loc.starts_with(&"T/c3".parse().unwrap())));
                    }
                });
            }
            // The maintenance job: split shards while producers run,
            // then merge a pair back. Indexes move under us, so take
            // fresh medians each time and tolerate shards that happen
            // to hold fewer than two keys at that instant.
            let mut splits = 0;
            for round in 0..6 {
                let shard = round % store.shard_count();
                if let Some(boundary) = median_key(&store, shard) {
                    if store.split_shard(shard, boundary).is_ok() {
                        splits += 1;
                    }
                }
                if splits >= 2 && store.shard_count() >= 3 {
                    store.merge_shards(0).unwrap();
                    splits -= 1;
                }
            }
        });

        let name = if parallel { "parallel" } else { "serial" };
        assert_eq!(store.len(), (writers * per_writer) as u64, "{name}: no loss through splits");
        let all = store.all().unwrap();
        assert_eq!(all.len(), writers * per_writer, "{name}");
        let distinct: BTreeSet<String> = all.iter().map(|r| r.loc.key()).collect();
        assert_eq!(distinct.len(), writers * per_writer, "{name}: no record lost or duplicated");
        // Oracle check: the exact multiset, not just counts.
        let mut want: Vec<ProvRecord> =
            (0..writers).flat_map(|w| (0..per_writer).map(move |i| make(w, i))).collect();
        want.sort();
        assert_eq!(sorted(all), want, "{name}: contents match the oracle");
        for w in 0..writers {
            assert_eq!(store.by_tid(Tid(w as u64)).unwrap().len(), per_writer, "{name}: w{w}");
        }
    }
}
