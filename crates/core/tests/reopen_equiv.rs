//! Reopen equivalence: a disk store reopened through **persisted
//! secondary indexes** (the O(index pages) sidecar path) must answer
//! every `ProvStore` probe and cursor **bit-for-bit** identically to
//! the same data reopened through a full index rebuild (the oracle:
//! a copy of the directory with the sidecar files deleted, so
//! `Engine::open_table` falls back to the scan-and-rebuild path).
//!
//! Checked across the deployment matrix: unsharded `SqlStore`, a
//! 4-shard `ShardedStore` (serial and parallel), and pipelined fronts
//! over both.

use cpdb_core::{
    PipelineConfig, PipelinedStore, ProvRecord, ProvStore, ShardedStore, SqlStore, Tid,
};
use cpdb_storage::Engine;
use cpdb_tree::Path;
use std::path::{Path as FsPath, PathBuf};
use std::sync::Arc;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cpdb-reopen-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn p(s: &str) -> Path {
    s.parse().unwrap()
}

/// Records across 6 containers with duplicate locations (several
/// records per loc, so posting lists are non-trivial) and sources.
fn dataset() -> Vec<ProvRecord> {
    let mut out = Vec::new();
    for i in 0..360u64 {
        let loc = p(&format!("T/c{}/n{}", 1 + i % 6, i % 30));
        out.push(match i % 4 {
            0 => ProvRecord::copy(Tid(i), loc, p(&format!("S1/a{}", i % 9))),
            1 => ProvRecord::delete(Tid(i), loc),
            _ => ProvRecord::insert(Tid(i), loc),
        });
    }
    // Boundary-adversarial rows: c1 vs c10 prefix bleed.
    out.push(ProvRecord::insert(Tid(900), p("T/c10")));
    out.push(ProvRecord::insert(Tid(901), p("T/c10/x")));
    out
}

fn copy_tree(src: &FsPath, dst: &FsPath) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        let to = dst.join(entry.file_name());
        if entry.file_type().unwrap().is_dir() {
            copy_tree(&entry.path(), &to);
        } else {
            std::fs::copy(entry.path(), &to).unwrap();
        }
    }
}

/// Deletes every index sidecar under `dir`, forcing the rebuild path.
fn strip_sidecars(dir: &FsPath) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let entry = entry.unwrap();
        if entry.file_type().unwrap().is_dir() {
            strip_sidecars(&entry.path());
        } else if entry.file_name().to_string_lossy().ends_with(".idx.tbl") {
            std::fs::remove_file(entry.path()).unwrap();
        }
    }
}

/// Asserts bit-for-bit equality of every probe and cursor between the
/// sidecar-reopened store and the rebuild-reopened oracle.
fn assert_bit_for_bit(fast: &dyn ProvStore, oracle: &dyn ProvStore) {
    assert_eq!(fast.len(), oracle.len());
    assert_eq!(fast.all().unwrap(), oracle.all().unwrap(), "all()");
    for tid in [0u64, 3, 17, 100, 900, 5_000] {
        assert_eq!(fast.by_tid(Tid(tid)).unwrap(), oracle.by_tid(Tid(tid)).unwrap(), "by_tid");
    }
    for loc in ["T/c1/n3", "T/c2/n17", "T/c10", "T/zzz"] {
        let loc = p(loc);
        assert_eq!(fast.by_loc(&loc).unwrap(), oracle.by_loc(&loc).unwrap(), "by_loc({loc})");
        assert_eq!(
            fast.at(Tid(25), &loc).unwrap(),
            oracle.at(Tid(25), &loc).unwrap(),
            "at(25, {loc})"
        );
        assert_eq!(
            fast.by_loc_chain(&loc, 1).unwrap(),
            oracle.by_loc_chain(&loc, 1).unwrap(),
            "by_loc_chain({loc})"
        );
    }
    for prefix in ["", "T", "T/c1", "T/c1/n3", "T/c10", "S1", "T/none"] {
        let prefix = p(prefix);
        assert_eq!(
            fast.by_loc_prefix(&prefix).unwrap(),
            oracle.by_loc_prefix(&prefix).unwrap(),
            "by_loc_prefix({prefix})"
        );
        assert_eq!(
            fast.by_tid_loc_prefix(Tid(42), &prefix).unwrap(),
            oracle.by_tid_loc_prefix(Tid(42), &prefix).unwrap(),
            "by_tid_loc_prefix({prefix})"
        );
        for batch in [1usize, 3, 64, usize::MAX] {
            let mut f = fast.scan_loc_prefix(&prefix, batch).unwrap();
            let mut o = oracle.scan_loc_prefix(&prefix, batch).unwrap();
            loop {
                let (a, b) = (f.next_batch().unwrap(), o.next_batch().unwrap());
                assert_eq!(a, b, "scan_loc_prefix({prefix}, {batch}) page mismatch");
                if a.is_none() {
                    break;
                }
            }
            let f = fast.scan_tid_loc_prefix(Tid(42), &prefix, batch).unwrap();
            let o = oracle.scan_tid_loc_prefix(Tid(42), &prefix, batch).unwrap();
            assert_eq!(f.drain().unwrap(), o.drain().unwrap(), "scan_tid_loc_prefix({prefix})");
        }
    }
}

#[test]
fn sql_store_reopen_with_persisted_indexes_matches_rebuild() {
    let dir = tempdir("sql");
    {
        let engine = Engine::on_disk(&dir).unwrap();
        let store = SqlStore::create(&engine, true).unwrap();
        for r in dataset() {
            store.insert(&r).unwrap();
        }
        store.checkpoint().unwrap();
    }
    let rebuild_dir = tempdir("sql-oracle");
    copy_tree(&dir, &rebuild_dir);
    strip_sidecars(&rebuild_dir);

    let fast_engine = Engine::on_disk(&dir).unwrap();
    let fast = SqlStore::open(&fast_engine, true).unwrap();
    // The sidecar path: page reads charged, zero statements (no
    // CREATE INDEX, no recount scan).
    assert!(fast_engine.meter().page_reads() > 0, "persisted indexes must be loaded");
    assert_eq!(fast_engine.meter().count(), 0, "no rebuild statement on the fast path");

    let oracle_engine = Engine::on_disk(&rebuild_dir).unwrap();
    let oracle = SqlStore::open(&oracle_engine, true).unwrap();
    // The rebuild path: no persisted pages, one statement per index.
    assert_eq!(oracle_engine.meter().page_reads(), 0);
    assert_eq!(oracle_engine.meter().count(), 3, "three CREATE INDEX rebuild statements");

    assert_bit_for_bit(&fast, &oracle);

    // Pipelined fronts over both answer identically too.
    let fast = PipelinedStore::spawn(Arc::new(fast), PipelineConfig::batched(16));
    let oracle = PipelinedStore::spawn(Arc::new(oracle), PipelineConfig::batched(16));
    assert_bit_for_bit(&fast, &oracle);

    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&rebuild_dir).unwrap();
}

#[test]
fn sharded_reopen_with_persisted_indexes_matches_rebuild() {
    let dir = tempdir("sharded");
    let containers: Vec<Path> = (1..=6).map(|i| p(&format!("T/c{i}"))).collect();
    {
        let store =
            ShardedStore::on_disk(&dir, ShardedStore::split_points(&containers, 4), true).unwrap();
        for r in dataset() {
            store.insert(&r).unwrap();
        }
        store.checkpoint().unwrap();
    }
    let rebuild_dir = tempdir("sharded-oracle");
    copy_tree(&dir, &rebuild_dir);
    strip_sidecars(&rebuild_dir);

    let fast = ShardedStore::open_disk(&dir).unwrap();
    for i in 0..fast.shard_count() {
        assert!(fast.shard_engine(i).meter().page_reads() > 0, "shard {i} uses the sidecar");
        assert_eq!(fast.shard_engine(i).meter().count(), 0, "shard {i} issues no statement");
    }
    let oracle = ShardedStore::open_disk(&rebuild_dir).unwrap();
    assert_bit_for_bit(&fast, &oracle);

    // The parallel executor changes the wiring, not the answers.
    let fast = fast.with_parallel_executor();
    assert_bit_for_bit(&fast, &oracle);

    // And the pipelined front over the parallel sharded store.
    let fast = PipelinedStore::spawn(Arc::new(fast), PipelineConfig::batched(16));
    assert_bit_for_bit(&fast, &oracle);

    std::fs::remove_dir_all(&dir).unwrap();
    std::fs::remove_dir_all(&rebuild_dir).unwrap();
}
