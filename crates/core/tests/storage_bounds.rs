//! The storage bounds of Sections 2.1.2–2.1.4, verified property-style
//! on random workloads:
//!
//! * transactional storage per transaction is `i + d + c` (inserted +
//!   deleted + copied nodes surviving the transaction's net effect);
//! * hierarchical storage is at most one record per operation (`|U|`);
//! * hierarchical-transactional storage `i + d + C` is bounded above by
//!   **both** `|U|` and `i + d + c`.

use cpdb_core::{MemStore, ProvStore, Strategy, Tid, Tracker};
use cpdb_workload::{generate, DeletionPattern, GenConfig, UpdatePattern};
use std::sync::Arc;

/// Replays a workload under a strategy; returns total records stored.
fn records_for(
    wl: &cpdb_workload::Workload,
    strategy: Strategy,
    txn_len: usize,
) -> (Arc<MemStore>, u64) {
    let store = Arc::new(MemStore::new());
    let mut tracker = Tracker::new(strategy, store.clone(), Tid(1));
    let mut ws = wl.workspace();
    for (i, u) in wl.script.iter().enumerate() {
        let e = ws.apply(u).unwrap();
        tracker.track(&e).unwrap();
        if (i + 1) % txn_len == 0 {
            tracker.commit().unwrap();
        }
    }
    tracker.commit().unwrap();
    let n = store.len();
    (store, n)
}

fn workloads() -> Vec<cpdb_workload::Workload> {
    let mut out = Vec::new();
    for (pattern, seed) in [
        (UpdatePattern::Add, 1u64),
        (UpdatePattern::Delete, 2),
        (UpdatePattern::Copy, 3),
        (UpdatePattern::AcMix, 4),
        (UpdatePattern::Mix, 5),
        (UpdatePattern::Real, 6),
    ] {
        let cfg = GenConfig {
            pattern,
            deletion: DeletionPattern::Random,
            seed,
            source_records: 24,
            target_records: 120,
        };
        out.push(generate(&cfg, 350));
    }
    out
}

#[test]
fn hierarchical_stores_at_most_one_record_per_operation() {
    for wl in workloads() {
        let (_, h) = records_for(&wl, Strategy::Hierarchical, 1);
        assert!(
            h <= wl.script.len() as u64,
            "{}: H stored {h} > |U| = {}",
            wl.config.pattern,
            wl.script.len()
        );
    }
}

#[test]
fn ht_is_bounded_by_both_alternatives() {
    for wl in workloads() {
        for txn_len in [1usize, 5, 25] {
            let (_, t) = records_for(&wl, Strategy::Transactional, txn_len);
            let (_, ht) = records_for(&wl, Strategy::HierarchicalTransactional, txn_len);
            let (_, h) = records_for(&wl, Strategy::Hierarchical, 1);
            assert!(ht <= t, "{} txn={txn_len}: HT {ht} > T {t}", wl.config.pattern);
            // i + d + C ≤ |U| — via H's per-op bound with the same net
            // semantics HT commits can only drop records.
            assert!(
                ht <= h.max(wl.script.len() as u64),
                "{} txn={txn_len}: HT {ht} exceeds |U|-style bound",
                wl.config.pattern
            );
        }
    }
}

#[test]
fn naive_dominates_everything() {
    for wl in workloads() {
        let (_, n) = records_for(&wl, Strategy::Naive, 1);
        for (strategy, txn_len) in [
            (Strategy::Hierarchical, 1usize),
            (Strategy::Transactional, 5),
            (Strategy::HierarchicalTransactional, 5),
        ] {
            let (_, other) = records_for(&wl, strategy, txn_len);
            assert!(other <= n, "{}: {strategy} stored {other} > naive {n}", wl.config.pattern);
        }
    }
}

#[test]
fn copy_pattern_shows_the_four_to_one_ratio() {
    // "The naive and transactional approaches store four provenance
    // records per copy […] whereas the hierarchical techniques store
    // only one such record per copy."
    let cfg = GenConfig {
        pattern: UpdatePattern::Copy,
        deletion: DeletionPattern::Random,
        seed: 9,
        source_records: 24,
        target_records: 16,
    };
    let wl = generate(&cfg, 200);
    let (_, n) = records_for(&wl, Strategy::Naive, 1);
    let (_, h) = records_for(&wl, Strategy::Hierarchical, 1);
    assert_eq!(n, 200 * 4);
    assert_eq!(h, 200);
}

#[test]
fn add_and_delete_patterns_are_method_insensitive() {
    // "Inserts and deletes are handled essentially the same by all
    // methods" — for single-node adds the counts are identical; for
    // deletes the hierarchical methods may be smaller only when whole
    // subtrees die.
    let cfg = GenConfig {
        pattern: UpdatePattern::Add,
        deletion: DeletionPattern::Random,
        seed: 10,
        source_records: 24,
        target_records: 16,
    };
    let wl = generate(&cfg, 200);
    let (_, n) = records_for(&wl, Strategy::Naive, 1);
    let (_, h) = records_for(&wl, Strategy::Hierarchical, 1);
    let (_, t) = records_for(&wl, Strategy::Transactional, 5);
    let (_, ht) = records_for(&wl, Strategy::HierarchicalTransactional, 5);
    assert_eq!(n, 200);
    assert_eq!(h, 200);
    assert_eq!(t, 200);
    assert_eq!(ht, 200);
}

#[test]
fn transactional_count_equals_net_change_size() {
    // For a copy-only workload with txn length L, T must store exactly
    // the number of copied nodes (no deletions, no overwrites of fresh
    // labels): c = 4 per copy.
    let cfg = GenConfig {
        pattern: UpdatePattern::Copy,
        deletion: DeletionPattern::Random,
        seed: 11,
        source_records: 24,
        target_records: 16,
    };
    let wl = generate(&cfg, 100);
    for txn_len in [1usize, 5, 20] {
        let (_, t) = records_for(&wl, Strategy::Transactional, txn_len);
        assert_eq!(t, 400, "txn_len {txn_len}");
        let (_, ht) = records_for(&wl, Strategy::HierarchicalTransactional, txn_len);
        assert_eq!(ht, 100, "txn_len {txn_len}: C = one root per copy");
    }
}

#[test]
fn longer_transactions_never_grow_storage() {
    for wl in workloads() {
        let mut prev = u64::MAX;
        for txn_len in [1usize, 5, 25, 100] {
            let (_, t) = records_for(&wl, Strategy::Transactional, txn_len);
            assert!(
                t <= prev,
                "{}: txn {txn_len} stored {t} > shorter txns {prev}",
                wl.config.pattern
            );
            prev = t;
        }
    }
}
