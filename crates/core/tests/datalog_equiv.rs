//! Cross-checks the hand-coded `QueryEngine` against the paper's own
//! Datalog rules (Section 2.2), evaluated by `cpdb-datalog`.
//!
//! For every strategy we replay a history, collect the version domains,
//! run the rules, and require identical `Src`/`Hist`/`Mod` answers at
//! every node of the final database.

use cpdb_core::{rules, MemStore, QueryEngine, Strategy, Tid, Tracker};
use cpdb_tree::Path;
use cpdb_update::fixtures;
use cpdb_update::Workspace;
use cpdb_workload::{generate, GenConfig, UpdatePattern};
use std::sync::Arc;

/// One replayed history: store, final workspace, version domains, tnow.
type Replay = (Arc<MemStore>, Workspace, Vec<(Tid, Vec<Path>)>, Tid);

/// Replays `script` under `strategy`.
fn replay(
    mut ws: Workspace,
    script: &cpdb_update::UpdateScript,
    strategy: Strategy,
    txn_len: usize,
    first_tid: Tid,
) -> Replay {
    let store = Arc::new(MemStore::new());
    let mut tracker = Tracker::new(strategy, store.clone(), first_tid);
    let root = ws.target().root_path();
    let initial_tid = Tid(first_tid.0 - 1);
    let mut versions = vec![(initial_tid, ws.target().root().all_paths(&root))];
    for (i, u) in script.iter().enumerate() {
        let before = tracker.current_tid();
        let e = ws.apply(u).unwrap();
        tracker.track(&e).unwrap();
        if strategy.is_transactional() {
            if (i + 1) % txn_len == 0 || i + 1 == script.len() {
                let tid = tracker.current_tid();
                tracker.commit().unwrap();
                versions.push((tid, ws.target().root().all_paths(&root)));
            }
        } else {
            versions.push((before, ws.target().root().all_paths(&root)));
        }
    }
    let tnow = Tid(tracker.current_tid().0 - 1);
    (store, ws, versions, tnow)
}

fn check_equivalence(
    ws: &Workspace,
    store: Arc<MemStore>,
    versions: &[(Tid, Vec<Path>)],
    tnow: Tid,
    strategy: Strategy,
) {
    let root = ws.target().root_path();
    let all_locs = ws.target().root().all_paths(&root);
    // The evaluator streams its facts from a read handle — the store's
    // contents are never materialized on this side of the check.
    let reads = cpdb_core::ReadArc::from(store.clone());
    let db =
        rules::evaluate_from(reads.handle(), &root, versions, tnow, &all_locs, &all_locs).unwrap();
    let engine = QueryEngine::new(store, strategy.is_hierarchical(), "T");

    for loc in &all_locs {
        // Src: the engine returns at most one tid; the rules return all
        // inserting transactions on the trace (also at most one).
        let dl_src = rules::src_answers(&db, loc);
        let qe_src = engine.get_src(loc, tnow).unwrap();
        assert_eq!(
            dl_src,
            qe_src.into_iter().collect::<Vec<_>>(),
            "{strategy}: Src({loc}) disagrees"
        );

        let mut qe_hist = engine.get_hist(loc, tnow).unwrap();
        qe_hist.sort();
        assert_eq!(rules::hist_answers(&db, loc), qe_hist, "{strategy}: Hist({loc}) disagrees");

        let subtree = ws.target().get(loc).unwrap().all_paths(loc);
        let qe_mod: Vec<Tid> = engine.get_mod(&subtree, tnow).unwrap().into_iter().collect();
        assert_eq!(rules::mod_answers(&db, loc), qe_mod, "{strategy}: Mod({loc}) disagrees");
    }
}

#[test]
fn figure3_queries_agree_with_datalog_all_strategies() {
    for strategy in Strategy::ALL {
        let txn_len = if strategy.is_transactional() { 5 } else { 1 };
        let (store, ws, versions, tnow) = replay(
            fixtures::figure4_workspace(),
            &fixtures::figure3_script(),
            strategy,
            txn_len,
            Tid(121),
        );
        check_equivalence(&ws, store, &versions, tnow, strategy);
    }
}

#[test]
fn random_workload_queries_agree_with_datalog() {
    for (pattern, seed) in
        [(UpdatePattern::Mix, 1u64), (UpdatePattern::AcMix, 2), (UpdatePattern::Real, 3)]
    {
        // Tiny databases keep the Datalog Trace closure tractable.
        let cfg = GenConfig {
            pattern,
            deletion: cpdb_workload::DeletionPattern::Random,
            seed,
            source_records: 5,
            target_records: 3,
        };
        let wl = generate(&cfg, 14);
        for strategy in Strategy::ALL {
            let txn_len = if strategy.is_transactional() { 4 } else { 1 };
            let (store, ws, versions, tnow) =
                replay(wl.workspace(), &wl.script, strategy, txn_len, Tid(1));
            check_equivalence(&ws, store, &versions, tnow, strategy);
        }
    }
}

#[test]
fn naive_and_hierarchical_answers_coincide() {
    // The two per-operation strategies encode the same history, so all
    // queries must agree between them — on a larger workload than the
    // Datalog check can afford.
    let cfg = GenConfig {
        pattern: UpdatePattern::Mix,
        deletion: cpdb_workload::DeletionPattern::Random,
        seed: 99,
        source_records: 20,
        target_records: 12,
    };
    let wl = generate(&cfg, 120);
    let (n_store, ws, _, tnow) = replay(wl.workspace(), &wl.script, Strategy::Naive, 1, Tid(1));
    let (h_store, _, _, h_tnow) =
        replay(wl.workspace(), &wl.script, Strategy::Hierarchical, 1, Tid(1));
    assert_eq!(tnow, h_tnow);
    let n = QueryEngine::new(n_store, false, "T");
    let h = QueryEngine::new(h_store, true, "T");
    let root = ws.target().root_path();
    for loc in ws.target().root().all_paths(&root) {
        assert_eq!(n.get_src(&loc, tnow).unwrap(), h.get_src(&loc, tnow).unwrap(), "Src({loc})");
        assert_eq!(n.get_hist(&loc, tnow).unwrap(), h.get_hist(&loc, tnow).unwrap(), "Hist({loc})");
        let sub = ws.target().get(&loc).unwrap().all_paths(&loc);
        assert_eq!(n.get_mod(&sub, tnow).unwrap(), h.get_mod(&sub, tnow).unwrap(), "Mod({loc})");
    }
}

#[test]
fn transactional_pair_answers_coincide() {
    let cfg = GenConfig {
        pattern: UpdatePattern::Mix,
        deletion: cpdb_workload::DeletionPattern::Random,
        seed: 123,
        source_records: 20,
        target_records: 12,
    };
    let wl = generate(&cfg, 120);
    let (t_store, ws, _, tnow) =
        replay(wl.workspace(), &wl.script, Strategy::Transactional, 5, Tid(1));
    let (ht_store, _, _, ht_tnow) =
        replay(wl.workspace(), &wl.script, Strategy::HierarchicalTransactional, 5, Tid(1));
    assert_eq!(tnow, ht_tnow);
    let t = QueryEngine::new(t_store, false, "T");
    let ht = QueryEngine::new(ht_store, true, "T");
    let root = ws.target().root_path();
    for loc in ws.target().root().all_paths(&root) {
        assert_eq!(t.get_src(&loc, tnow).unwrap(), ht.get_src(&loc, tnow).unwrap(), "Src({loc})");
        assert_eq!(
            t.get_hist(&loc, tnow).unwrap(),
            ht.get_hist(&loc, tnow).unwrap(),
            "Hist({loc})"
        );
        let sub = ws.target().get(&loc).unwrap().all_paths(&loc);
        assert_eq!(t.get_mod(&sub, tnow).unwrap(), ht.get_mod(&sub, tnow).unwrap(), "Mod({loc})");
    }
}
