//! The database-backed editor must agree exactly with the formal
//! semantics `[[U]]` and with direct tracker runs, across strategies and
//! workload patterns.

use cpdb_core::{Editor, MemStore, ProvStore, Strategy, Tid, Tracker};
use cpdb_storage::Engine;
use cpdb_workload::{generate, GenConfig, UpdatePattern, Workload};
use cpdb_xmldb::XmlDb;
use std::sync::Arc;

fn editor_for(wl: &Workload, strategy: Strategy, store: Arc<MemStore>) -> Editor {
    let target = XmlDb::create(wl.target_name, &Engine::in_memory()).unwrap();
    target.load(&wl.target_initial).unwrap();
    let source = XmlDb::create(wl.source_name, &Engine::in_memory()).unwrap();
    source.load(&wl.source).unwrap();
    Editor::new("curator", Arc::new(target), strategy, store, Tid(1)).with_source(Arc::new(source))
}

#[test]
fn editor_tree_matches_formal_semantics() {
    for (pattern, seed) in [
        (UpdatePattern::Add, 10u64),
        (UpdatePattern::Delete, 11),
        (UpdatePattern::Copy, 12),
        (UpdatePattern::AcMix, 13),
        (UpdatePattern::Mix, 14),
        (UpdatePattern::Real, 15),
    ] {
        let cfg = GenConfig {
            pattern,
            deletion: cpdb_workload::DeletionPattern::Random,
            seed,
            source_records: 16,
            target_records: 60,
        };
        let wl = generate(&cfg, 200);
        // Formal semantics.
        let mut ws = wl.workspace();
        ws.apply_script(&wl.script).unwrap();
        // Editor over real databases.
        let mut ed = editor_for(&wl, Strategy::Naive, Arc::new(MemStore::new()));
        ed.run_script(&wl.script, 1).unwrap();
        assert_eq!(
            ed.target().tree_from_db().unwrap(),
            *ws.target().root(),
            "{pattern}: editor and [[U]] disagree"
        );
    }
}

#[test]
fn editor_store_matches_direct_tracker_run() {
    // Tracking through the editor (database effects) must yield exactly
    // the records a direct Workspace+Tracker replay yields.
    let cfg = GenConfig {
        pattern: UpdatePattern::Mix,
        deletion: cpdb_workload::DeletionPattern::Random,
        seed: 77,
        source_records: 16,
        target_records: 40,
    };
    let wl = generate(&cfg, 150);
    for strategy in Strategy::ALL {
        let txn_len = if strategy.is_transactional() { 5 } else { 1 };

        let direct_store = Arc::new(MemStore::new());
        let mut tracker = Tracker::new(strategy, direct_store.clone(), Tid(1));
        let mut ws = wl.workspace();
        for (i, u) in wl.script.iter().enumerate() {
            let e = ws.apply(u).unwrap();
            tracker.track(&e).unwrap();
            if (i + 1) % txn_len == 0 {
                tracker.commit().unwrap();
            }
        }
        tracker.commit().unwrap();

        let editor_store = Arc::new(MemStore::new());
        let mut ed = editor_for(&wl, strategy, editor_store.clone());
        ed.run_script(&wl.script, txn_len).unwrap();

        let mut a = direct_store.all().unwrap();
        let mut b = editor_store.all().unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b, "{strategy}: editor-tracked records diverge from direct tracking");
    }
}

#[test]
fn round_trip_accounting_scales_with_subtree_sizes() {
    // Pasting k-node subtrees costs k target interactions (Figure 6's
    // per-node pasteNode) — the basis of the timing experiments.
    let cfg = GenConfig {
        pattern: UpdatePattern::Copy,
        deletion: cpdb_workload::DeletionPattern::Random,
        seed: 5,
        source_records: 16,
        target_records: 8,
    };
    let wl = generate(&cfg, 50);
    let mut ed = editor_for(&wl, Strategy::Naive, Arc::new(MemStore::new()));
    let base = ed.target().round_trips();
    ed.run_script(&wl.script, 1).unwrap();
    let paste_trips = ed.target().round_trips() - base;
    // 50 copies of size-4 records: 4 paste interactions each.
    assert_eq!(paste_trips, 50 * 4);
    // Naive provenance wrote 4 records per copy.
    assert_eq!(ed.tracker().store().write_trips(), 50 * 4);
}
