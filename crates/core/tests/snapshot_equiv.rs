//! Snapshot-vs-flush equivalence: a [`SnapshotReader`] over a quiesced
//! [`PipelinedStore`] must answer every read bit-for-bit like the
//! flushing read-your-writes path, across the deployment shapes; and
//! under concurrent producers a snapshot must observe a batch-atomic
//! prefix of the accepted stream — never a torn `insert_batch` call,
//! never a record newer than its pinned epoch.
//!
//! [`SnapshotReader`]: cpdb_core::SnapshotReader

use cpdb_core::{
    MemStore, PipelineConfig, PipelinedStore, ProvRecord, ProvStore, ReadHandle, ShardedStore,
    SqlStore, Tid,
};
use cpdb_storage::Engine;
use cpdb_tree::Path;
use cpdb_update::AtomicUpdate;
use cpdb_workload::{generate, GenConfig, UpdatePattern, Workload};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Provenance records the seeded workload's script would produce (the
/// same derivation as the `store_equiv` suite: one record per atomic
/// update, plus a child-level record per copy for subtree depth).
fn records_from(wl: &Workload) -> Vec<ProvRecord> {
    let mut out = Vec::new();
    for (i, u) in wl.script.iter().enumerate() {
        let tid = Tid(1 + (i / 5) as u64);
        match u {
            AtomicUpdate::Insert { target, label, .. } => {
                out.push(ProvRecord::insert(tid, target.child(*label)));
            }
            AtomicUpdate::Delete { target, label } => {
                out.push(ProvRecord::delete(tid, target.child(*label)));
            }
            AtomicUpdate::Copy { src, target } => {
                out.push(ProvRecord::copy(tid, target.clone(), src.clone()));
                out.push(ProvRecord::copy(tid, target.child("x"), src.child("x")));
            }
        }
    }
    out
}

/// The top-level containers (`T/<label>`) appearing in the records.
fn containers_of(records: &[ProvRecord]) -> Vec<Path> {
    let set: BTreeSet<Path> = records
        .iter()
        .filter(|r| r.loc.len() >= 2)
        .map(|r| Path::from(&r.loc.segments()[..2]))
        .collect();
    set.into_iter().collect()
}

fn sorted(mut v: Vec<ProvRecord>) -> Vec<ProvRecord> {
    v.sort();
    v
}

fn drain(mut cur: cpdb_core::RecordCursor<'_>) -> Vec<ProvRecord> {
    let mut out = Vec::new();
    while let Some(chunk) = cur.next_batch().unwrap() {
        out.extend(chunk);
    }
    out
}

/// Quiesced equivalence: once the pipeline has drained, the snapshot
/// reader and the flushing store agree on every [`ReadHandle`] method,
/// for every probe in the matrix, on each deployment shape.
#[test]
fn quiesced_snapshot_matches_flushing_reads_bit_for_bit() {
    let wl = generate(&GenConfig::for_length(UpdatePattern::Mix, 500, 2026), 500);
    let records = records_from(&wl);
    let containers = containers_of(&records);
    assert!(containers.len() >= 8, "workload must exercise many containers");

    let e1 = Engine::in_memory();
    let deployments: [(&str, Arc<PipelinedStore>); 3] = [
        (
            "pipelined-mem",
            Arc::new(PipelinedStore::spawn(Arc::new(MemStore::new()), PipelineConfig::batched(16))),
        ),
        (
            "pipelined-sql",
            Arc::new(PipelinedStore::spawn(
                Arc::new(SqlStore::create(&e1, true).unwrap()),
                PipelineConfig::batched(16),
            )),
        ),
        (
            "pipelined-sharded-parallel",
            Arc::new(PipelinedStore::spawn(
                Arc::new(
                    ShardedStore::in_memory(ShardedStore::split_points(&containers, 4), true)
                        .unwrap()
                        .with_parallel_executor(),
                ),
                PipelineConfig::batched(16),
            )),
        ),
    ];

    for (name, pipe) in &deployments {
        // Both enqueue paths, then quiesce.
        for (i, chunk) in records.chunks(7).enumerate() {
            if i % 2 == 0 {
                pipe.insert_batch(chunk).unwrap();
            } else {
                for r in chunk {
                    pipe.insert(r).unwrap();
                }
            }
        }
        pipe.flush().unwrap();
        let snap = pipe.snapshot_reader();
        assert_eq!(snap.epoch(), records.len() as u64, "{name}: epoch covers the whole load");

        assert_eq!(sorted(snap.all().unwrap()), sorted(pipe.all().unwrap()), "{name}: all");

        let max_tid = 1 + (records.len() / 5) as u64;
        for tid in (0..=max_tid + 1).map(Tid) {
            assert_eq!(
                sorted(snap.by_tid(tid).unwrap()),
                sorted(pipe.by_tid(tid).unwrap()),
                "{name}: by_tid {tid:?}"
            );
        }

        let mut prefixes = containers.clone();
        prefixes.push(Path::single(wl.target_name));
        prefixes.push(Path::epsilon());
        prefixes.push("T/zzz/nope".parse().unwrap());
        for prefix in &prefixes {
            assert_eq!(
                sorted(snap.by_loc_prefix(prefix).unwrap()),
                sorted(pipe.by_loc_prefix(prefix).unwrap()),
                "{name}: by_loc_prefix {prefix}"
            );
            for tid in [Tid(1), Tid(17), Tid(9999)] {
                assert_eq!(
                    sorted(snap.by_tid_loc_prefix(tid, prefix).unwrap()),
                    sorted(pipe.by_tid_loc_prefix(tid, prefix).unwrap()),
                    "{name}: by_tid_loc_prefix {tid:?} {prefix}"
                );
            }
            // Streaming cursors at several batch sizes: bit-for-bit,
            // including arrival order.
            for batch in [1usize, 3, 64, usize::MAX] {
                assert_eq!(
                    drain(snap.scan_loc_prefix(prefix, batch).unwrap()),
                    drain(pipe.scan_loc_prefix(prefix, batch).unwrap()),
                    "{name}: scan_loc_prefix {prefix} b{batch}"
                );
            }
            for tid in [Tid(1), Tid(9999)] {
                assert_eq!(
                    drain(snap.scan_tid_loc_prefix(tid, prefix, 8).unwrap()),
                    drain(pipe.scan_tid_loc_prefix(tid, prefix, 8).unwrap()),
                    "{name}: scan_tid_loc_prefix {tid:?} {prefix}"
                );
            }
        }

        for r in records.iter().step_by(13) {
            assert_eq!(
                sorted(snap.at(r.tid, &r.loc).unwrap()),
                sorted(pipe.at(r.tid, &r.loc).unwrap()),
                "{name}: at"
            );
            assert_eq!(
                sorted(snap.by_loc(&r.loc).unwrap()),
                sorted(pipe.by_loc(&r.loc).unwrap()),
                "{name}: by_loc"
            );
            for min_depth in [0usize, 1, 2] {
                assert_eq!(
                    sorted(snap.by_loc_chain(&r.loc, min_depth).unwrap()),
                    sorted(pipe.by_loc_chain(&r.loc, min_depth).unwrap()),
                    "{name}: by_loc_chain {min_depth}"
                );
            }
        }
    }
}

/// The record batch `w` writes as its `b`-th transactional commit: all
/// five records share one tid, so a torn `insert_batch` call is
/// detectable as a tid with fewer than five visible records.
fn producer_batch(containers: &[Path], w: usize, b: usize) -> Vec<ProvRecord> {
    let tid = Tid((w * 10_000 + b) as u64);
    (0..5)
        .map(|j| {
            let loc = containers[(w + b + j) % containers.len()]
                .child(format!("w{w}"))
                .child(format!("b{b}"))
                .child(format!("r{j}"));
            ProvRecord::insert(tid, loc)
        })
        .collect()
}

/// Asserts `rows` is batch-atomic: every visible producer tid has all
/// five of its records. Returns the visible batch count.
fn assert_batch_atomic(rows: &[ProvRecord], what: &str) -> usize {
    let mut per_tid: BTreeMap<Tid, usize> = BTreeMap::new();
    for r in rows {
        *per_tid.entry(r.tid).or_default() += 1;
    }
    for (tid, n) in &per_tid {
        assert_eq!(*n, 5, "{what}: tid {tid:?} is torn ({n} of 5 records visible)");
    }
    per_tid.len()
}

/// Four concurrent producers stream five-record `insert_batch` calls
/// through the pipeline while snapshot readers probe and a pinned
/// cursor drains: every observation is a batch-atomic prefix — no call
/// is ever half-visible, sizes never regress across successive reads,
/// and the drained cursor equals a prefix frozen at its pin.
#[test]
fn concurrent_producers_snapshots_observe_batch_atomic_prefixes() {
    let containers: Vec<Path> = (1..=8).map(|i| format!("T/c{i}").parse().unwrap()).collect();
    let sharded = ShardedStore::in_memory(ShardedStore::split_points(&containers, 4), true)
        .unwrap()
        .with_parallel_executor();
    // A batch size that does not divide the 5-record calls, so the
    // committers constantly drain partial calls and the epoch's
    // boundary discipline is what keeps reads atomic.
    let pipe = Arc::new(PipelinedStore::spawn(Arc::new(sharded), PipelineConfig::batched(8)));
    let snap = pipe.snapshot_reader();

    let writers = 4usize;
    let batches = 60usize;

    std::thread::scope(|scope| {
        for w in 0..writers {
            let pipe = Arc::clone(&pipe);
            let containers = &containers;
            scope.spawn(move || {
                for b in 0..batches {
                    pipe.insert_batch(&producer_batch(containers, w, b)).unwrap();
                }
            });
        }
        // Snapshot probes racing the producers: batch-atomic, monotone.
        for _ in 0..2 {
            let reader = pipe.snapshot_reader();
            scope.spawn(move || {
                let mut last = 0usize;
                for _ in 0..40 {
                    let rows = reader.all().unwrap();
                    let seen = assert_batch_atomic(&rows, "racing all()");
                    assert!(seen >= last, "visible prefix regressed: {seen} < {last}");
                    last = seen;
                }
            });
        }
        // A cursor pinned mid-stream: drains a frozen prefix.
        {
            let reader = pipe.snapshot_reader();
            scope.spawn(move || {
                let rows = drain(reader.scan_loc_prefix(&Path::epsilon(), 16).unwrap());
                assert!(
                    rows.windows(2).all(|p| p[0].loc.key() <= p[1].loc.key()),
                    "cursor pages arrive in key order"
                );
                assert_batch_atomic(&rows, "pinned cursor");
            });
        }
    });

    pipe.flush().unwrap();
    assert_eq!(snap.epoch(), (writers * batches * 5) as u64);
    let rows = snap.all().unwrap();
    assert_eq!(assert_batch_atomic(&rows, "final"), writers * batches);
    assert_eq!(sorted(rows), sorted(pipe.all().unwrap()), "final snapshot equals flushed store");
}

/// Snapshot reads never flush: with the committer's batch threshold
/// out of reach, queued records stay queued across any number of
/// snapshot probes — and remain invisible to them — until a
/// read-your-writes read forces the drain.
#[test]
fn snapshot_reads_leave_the_queue_alone() {
    let inner = Arc::new(MemStore::new());
    let pipe = PipelinedStore::spawn(inner.clone(), PipelineConfig::batched(1_000_000));
    let snap = pipe.snapshot_reader();
    let records: Vec<ProvRecord> =
        (0..64).map(|i| ProvRecord::insert(Tid(i), format!("T/c{i}").parse().unwrap())).collect();
    for chunk in records.chunks(4) {
        pipe.insert_batch(chunk).unwrap();
    }
    for _ in 0..10 {
        assert!(snap.all().unwrap().is_empty(), "unadmitted records are invisible");
        assert!(snap.by_loc_prefix(&"T".parse().unwrap()).unwrap().is_empty());
        assert_eq!(inner.len(), 0, "snapshot probes must not drain the queue");
        assert_eq!(pipe.pending(), 64);
    }
    // Read-your-writes drains; the snapshot catches up.
    assert_eq!(pipe.all().unwrap().len(), 64);
    assert_eq!(snap.all().unwrap().len(), 64);
}
