//! Error-path coverage for the group-commit pipeline: a committer
//! flush that fails with a *real* storage-level I/O error (injected by
//! [`FaultyBackend`] under a real `SqlStore` table) must surface to the
//! caller on the next enqueue/flush, and the pipeline must stay
//! drainable — no silently dropped records, no wedged queue.

use cpdb_core::{PipelineConfig, PipelinedStore, ProvRecord, ProvStore, SqlStore, Tid};
use cpdb_storage::{Backend, Engine, FaultyBackend, MemBackend};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn records(n: usize) -> Vec<ProvRecord> {
    // Long-ish labels so pages fill (and the backend is hit) quickly.
    (0..n)
        .map(|i| {
            ProvRecord::insert(Tid(i as u64), format!("T/container{i}/record{i}").parse().unwrap())
        })
        .collect()
}

/// A `SqlStore` whose pages live on a backend that starts failing every
/// operation after `successes` operations.
fn faulty_store(successes: u64) -> Arc<dyn ProvStore> {
    let engine = Engine::with_backend(move |_| {
        Arc::new(FaultyBackend::new(MemBackend::new(), successes)) as Arc<dyn Backend>
    });
    Arc::new(SqlStore::create(&engine, false).expect("creation stays under the fault countdown"))
}

#[test]
fn failed_group_commit_surfaces_and_leaves_the_pipeline_drainable() {
    // Enough successful backend operations to create the table and
    // absorb the first page allocations, few enough that ingesting the
    // stream must eventually hit the injected I/O error.
    let store = faulty_store(24);
    let pipe = PipelinedStore::spawn(store, PipelineConfig::batched(64));

    // Feed records until the parked flush error surfaces on an
    // enqueue; backpressure (capacity 256) guarantees the producer
    // cannot simply outrun the failure forever.
    let stream = records(40_000);
    let mut accepted = 0u64;
    let mut enqueue_error = None;
    for r in &stream {
        // Every write accepts its record; an Err reports an earlier
        // commit failure.
        accepted += 1;
        if let Err(e) = pipe.insert(r) {
            enqueue_error = Some(e);
            break;
        }
    }
    let err = enqueue_error.expect("the injected I/O fault must surface on an enqueue");
    assert!(err.to_string().contains("injected fault"), "typed storage error, got: {err}");
    assert_eq!(pipe.enqueued(), accepted, "the erroring insert still accepted its record");

    // No silently dropped records: everything accepted is either
    // committed to the table or still queued for retry.
    let retained = pipe.pending() as u64;
    assert!(retained > 0, "the failed batch must be retained for retry");
    assert!(
        pipe.committed() + retained >= accepted,
        "committed ({}) + retained ({retained}) must cover accepted ({accepted})",
        pipe.committed()
    );

    // Not wedged: enqueues and flushes keep returning (with errors —
    // the backend never recovers) instead of deadlocking, and the
    // retained records stay drainable.
    let t0 = Instant::now();
    pipe.flush().expect_err("the backend is still failing");
    let extra = ProvRecord::insert(Tid(99_999), "T/after/failure".parse().unwrap());
    let _ = pipe.insert(&extra);
    pipe.flush().expect_err("still failing");
    assert!(t0.elapsed() < Duration::from_secs(10), "error paths must not block");
    assert!(pipe.pending() > 0, "records remain queued, never silently discarded");
    // Drop must also return promptly (committer shuts down even with a
    // permanently failing store) — implicitly asserted by test exit.
}
