//! Offline stand-in for the `bytes` crate.
//!
//! Provides the [`Buf`] / [`BufMut`] subset used by the storage row
//! codec: little-endian integer get/put, slice put, and cursor-style
//! consumption over `&[u8]`.

/// Read cursor over a byte source. Implemented for `&[u8]`, advancing
/// the slice as values are consumed.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// `true` iff any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Consumes one byte.
    fn get_u8(&mut self) -> u8;

    /// Consumes a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16;

    /// Consumes a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;

    /// Consumes a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;

    /// Consumes a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64;

    /// Consumes `len` bytes and returns them as an owned buffer.
    fn copy_to_bytes(&mut self, len: usize) -> Vec<u8>;
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        let v = self[0];
        *self = &self[1..];
        v
    }

    fn get_u16_le(&mut self) -> u16 {
        let v = u16::from_le_bytes(self[..2].try_into().expect("2 bytes"));
        *self = &self[2..];
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        let v = u32::from_le_bytes(self[..4].try_into().expect("4 bytes"));
        *self = &self[4..];
        v
    }

    fn get_u64_le(&mut self) -> u64 {
        let v = u64::from_le_bytes(self[..8].try_into().expect("8 bytes"));
        *self = &self[8..];
        v
    }

    fn get_i64_le(&mut self) -> i64 {
        let v = i64::from_le_bytes(self[..8].try_into().expect("8 bytes"));
        *self = &self[8..];
        v
    }

    fn copy_to_bytes(&mut self, len: usize) -> Vec<u8> {
        let v = self[..len].to_vec();
        *self = &self[len..];
        v
    }
}

/// Write sink for encoded bytes. Implemented for `Vec<u8>`.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32);

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64);

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64);

    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);
}

impl BufMut for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_u16_le(300);
        out.put_u32_le(70_000);
        out.put_u64_le(u64::MAX - 1);
        out.put_i64_le(-5);
        out.put_slice(b"abc");

        let mut buf: &[u8] = &out;
        assert_eq!(buf.get_u8(), 7);
        assert_eq!(buf.get_u16_le(), 300);
        assert_eq!(buf.get_u32_le(), 70_000);
        assert_eq!(buf.get_u64_le(), u64::MAX - 1);
        assert_eq!(buf.get_i64_le(), -5);
        assert_eq!(buf.copy_to_bytes(2), b"ab".to_vec());
        assert!(buf.has_remaining());
        assert_eq!(buf.remaining(), 1);
    }
}
