//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API that this workspace's
//! property tests use: the [`Strategy`] trait with `prop_map` /
//! `prop_recursive`, regex-literal string strategies, integer ranges
//! and `any::<T>()`, tuple/`Just`/`prop_oneof!` composition, the
//! `collection::{vec, btree_map}` strategies, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-test seed (derived from the test name, overridable
//! with `PROPTEST_SEED`), and failing cases are **not shrunk** — the
//! panic message carries the case number and seed instead so a failure
//! is still reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;
use std::sync::Arc;

pub mod test_runner {
    //! Test-case generation state.

    use super::*;

    /// Per-test generation state: the RNG every strategy draws from.
    pub struct Runner {
        pub(crate) rng: SmallRng,
        pub(crate) seed: u64,
    }

    impl Runner {
        /// A runner with a deterministic seed derived from `name`
        /// (override with the `PROPTEST_SEED` environment variable).
        pub fn new(name: &str) -> Runner {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| {
                    // FNV-1a over the test name: stable across runs.
                    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                    for b in name.bytes() {
                        h ^= b as u64;
                        h = h.wrapping_mul(0x1000_0000_01b3);
                    }
                    h
                });
            Runner { rng: SmallRng::seed_from_u64(seed), seed }
        }

        /// The seed this runner was built from (for failure reports).
        pub fn seed(&self) -> u64 {
            self.seed
        }
    }
}

use test_runner::Runner;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// A failed test case (returned early by `prop_assert!`).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

// ---------------------------------------------------------------------
// The Strategy trait and combinators.

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, runner: &mut Runner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Recursive strategies: `recurse` receives a strategy for the
    /// whole recursive type and builds one level on top of it; `depth`
    /// bounds the nesting. (`desired_size` / `expected_branch_size` are
    /// accepted for API compatibility and ignored.)
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive {
            leaf: BoxedStrategy(Arc::new(self)),
            recurse: Arc::new(move |inner| BoxedStrategy(Arc::new(recurse(inner)))),
            depth,
        }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, shareable strategy.
pub struct BoxedStrategy<V>(Arc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, runner: &mut Runner) -> V {
        self.0.generate(runner)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, runner: &mut Runner) -> U {
        (self.f)(self.inner.generate(runner))
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<V> {
    leaf: BoxedStrategy<V>,
    recurse: Arc<dyn Fn(BoxedStrategy<V>) -> BoxedStrategy<V>>,
    depth: u32,
}

impl<V: 'static> Strategy for Recursive<V> {
    type Value = V;
    fn generate(&self, runner: &mut Runner) -> V {
        if self.depth == 0 || runner.rng.gen_bool(0.25) {
            return self.leaf.generate(runner);
        }
        let inner = Recursive {
            leaf: self.leaf.clone(),
            recurse: self.recurse.clone(),
            depth: self.depth - 1,
        };
        (self.recurse)(BoxedStrategy(Arc::new(inner))).generate(runner)
    }
}

/// A constant strategy (generates clones of its value).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _runner: &mut Runner) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over the given arms (must be non-empty).
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, runner: &mut Runner) -> V {
        let i = runner.rng.gen_range(0..self.arms.len());
        self.arms[i].generate(runner)
    }
}

/// Boxes a strategy for use in [`Union`] (used by `prop_oneof!`).
pub fn box_strategy<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    BoxedStrategy(Arc::new(s))
}

// ---------------------------------------------------------------------
// Primitive strategies: any::<T>(), ranges, tuples, regex literals.

/// Types with a full-range uniform generator.
pub trait Arbitrary {
    /// Draws a uniform value.
    fn arbitrary(runner: &mut Runner) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(runner: &mut Runner) -> $t {
                runner.rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(runner: &mut Runner) -> bool {
        runner.rng.next_u64() & 1 == 1
    }
}

use rand::RngCore;

/// Full-range strategy for a primitive type.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, runner: &mut Runner) -> T {
        T::arbitrary(runner)
    }
}

/// The full-range strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut Runner) -> $t {
                runner.rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, runner: &mut Runner) -> $t {
                runner.rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, runner: &mut Runner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(runner),)+)
            }
        }
    )*};
}

impl_tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D));

// A `&'static str` is a strategy generating strings matching the
// pattern, supporting the regex subset the workspace uses: literal
// chars, `\`-escapes, `[..]` classes with ranges, and `{m}` / `{m,n}`
// quantifiers.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, runner: &mut Runner) -> String {
        generate_from_pattern(self, runner)
    }
}

enum PatAtom {
    Lit(char),
    Class(Vec<char>),
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut set = Vec::new();
    let mut pending: Option<char> = None;
    loop {
        let c = chars.next().expect("unterminated [..] class in pattern");
        match c {
            ']' => {
                if let Some(p) = pending {
                    set.push(p);
                }
                return set;
            }
            '-' if pending.is_some() && chars.peek() != Some(&']') => {
                let lo = pending.take().expect("range start");
                let hi = chars.next().expect("range end");
                for v in lo as u32..=hi as u32 {
                    if let Some(ch) = char::from_u32(v) {
                        set.push(ch);
                    }
                }
            }
            '\\' => {
                if let Some(p) = pending.replace(chars.next().expect("escape")) {
                    set.push(p);
                }
            }
            other => {
                if let Some(p) = pending.replace(other) {
                    set.push(p);
                }
            }
        }
    }
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    if chars.peek() != Some(&'{') {
        return (1, 1);
    }
    chars.next();
    let mut body = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            break;
        }
        body.push(c);
    }
    match body.split_once(',') {
        Some((m, n)) => {
            (m.trim().parse().expect("quantifier min"), n.trim().parse().expect("quantifier max"))
        }
        None => {
            let n = body.trim().parse().expect("quantifier count");
            (n, n)
        }
    }
}

fn generate_from_pattern(pattern: &str, runner: &mut Runner) -> String {
    let mut chars = pattern.chars().peekable();
    let mut atoms: Vec<(PatAtom, usize, usize)> = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => PatAtom::Class(parse_class(&mut chars)),
            '\\' => PatAtom::Lit(chars.next().expect("dangling escape in pattern")),
            other => PatAtom::Lit(other),
        };
        let (lo, hi) = parse_quantifier(&mut chars);
        atoms.push((atom, lo, hi));
    }
    let mut out = String::new();
    for (atom, lo, hi) in atoms {
        let n = runner.rng.gen_range(lo..=hi);
        for _ in 0..n {
            match &atom {
                PatAtom::Lit(c) => out.push(*c),
                PatAtom::Class(set) => {
                    out.push(set[runner.rng.gen_range(0..set.len())]);
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Collection strategies.

pub mod collection {
    //! `vec` and `btree_map` strategies.

    use super::*;

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of values from `element`, sized within `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, runner: &mut Runner) -> Vec<S::Value> {
            let n = runner.rng.gen_range(self.size.clone());
            (0..n).map(|_| self.element.generate(runner)).collect()
        }
    }

    /// Strategy for `BTreeMap<K::Value, V::Value>`.
    pub struct BTreeMapStrategy<K, V> {
        keys: K,
        values: V,
        size: Range<usize>,
    }

    /// A map with keys/values from the given strategies, sized within
    /// `size` (fewer entries when duplicate keys collide, matching
    /// proptest).
    pub fn btree_map<K: Strategy, V: Strategy>(
        keys: K,
        values: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { keys, values, size }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = std::collections::BTreeMap<K::Value, V::Value>;
        fn generate(&self, runner: &mut Runner) -> Self::Value {
            let n = runner.rng.gen_range(self.size.clone());
            (0..n).map(|_| (self.keys.generate(runner), self.values.generate(runner))).collect()
        }
    }
}

// ---------------------------------------------------------------------
// Macros.

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::box_strategy($arm)),+])
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case
/// (with a message) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Declares property tests: each function runs its body against many
/// generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::Runner::new(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut runner);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{} (seed {}): {}",
                            stringify!($name),
                            case,
                            cfg.cases,
                            runner.seed(),
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_generation_matches_shape() {
        let mut runner = crate::test_runner::Runner::new("pattern");
        for _ in 0..200 {
            let s = crate::Strategy::generate(&"[a-z][a-z0-9_.]{0,6}", &mut runner);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            let t = crate::Strategy::generate(&"[a-z]{1,4}\\{[0-9]{1,2}\\}", &mut runner);
            assert!(t.contains('{') && t.ends_with('}'), "{t:?}");
            let u = crate::Strategy::generate(&"[ -~]{0,12}", &mut runner);
            assert!(u.len() <= 12 && u.chars().all(|c| (' '..='~').contains(&c)), "{u:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn oneof_map_and_ranges_compose(
            v in prop_oneof![any::<u8>().prop_map(u64::from), 1000u64..2000],
            xs in collection::vec(0usize..10, 0..5),
        ) {
            prop_assert!(v < 2000);
            prop_assert!(xs.len() < 5);
            prop_assert!(xs.iter().all(|&x| x < 10));
        }
    }
}
