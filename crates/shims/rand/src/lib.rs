//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Implements exactly what the workspace consumes: `SmallRng` seeded
//! via [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer
//! ranges, [`Rng::gen_bool`], and [`seq::SliceRandom::shuffle`]. The
//! generator is xoshiro256++ seeded through splitmix64 — deterministic
//! across platforms, which is all the workload generators need.

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Integer types samplable from ranges.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[lo, hi)` given `hi > lo`.
    fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
    /// Samples uniformly from `[lo, hi]` given `hi >= lo`.
    fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(hi > lo, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
            fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(hi >= lo, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range a value can be drawn from (rand 0.8's `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the small, fast generator rand 0.8 uses for
    /// `SmallRng` on 64-bit targets.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (rand 0.8's trait of the same name).
    pub trait SliceRandom {
        /// Item type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = SmallRng::seed_from_u64(43);
        let same: usize =
            (0..64).filter(|_| a.gen_range(0u64..1000) == c.gen_range(0u64..1000)).count();
        assert!(same < 32, "different seeds should diverge");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u8 = rng.gen_range(b'A'..=b'Z');
            assert!(w.is_ascii_uppercase());
            let x = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&x));
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = SmallRng::seed_from_u64(9);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle of 100 elements should move something");
    }
}
