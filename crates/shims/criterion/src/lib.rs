//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset this workspace's benches use: benchmark
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, and the `criterion_group!` / `criterion_main!`
//! macros. Measurement is deliberately simple — warm up once, then run
//! batches of iterations until the configured measurement time is
//! spent, and report mean / min per-iteration wall time to stdout.
//!
//! When invoked by `cargo test` (Cargo passes `--test` to harness-less
//! bench targets), benchmarks run a single iteration each so the tier-1
//! suite stays fast.

use std::time::{Duration, Instant};

/// Passes a value through an `std::hint::black_box` to defeat
/// optimization of benchmarked expressions.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A named benchmark id, rendered as `function/parameter`.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { name: format!("{}/{parameter}", function.into()) }
    }

    /// Builds a parameterless id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { name: s.to_owned() }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher<'a> {
    config: &'a Config,
    /// (total time, iterations) of the measured run.
    result: Option<(Duration, u64)>,
}

impl Bencher<'_> {
    /// Times `routine`, storing the aggregate for the caller to report.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.config.smoke {
            let t0 = Instant::now();
            black_box(routine());
            self.result = Some((t0.elapsed(), 1));
            return;
        }
        // Warm-up: one untimed call.
        black_box(routine());
        let budget = self.config.measurement_time;
        // Iteration cap so very fast routines don't spin forever once
        // the budget's clock resolution stops mattering.
        let cap = (self.config.sample_size.max(1) as u64) * 10_000;
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        while iters == 0 || (measured < budget && iters < cap) {
            let t0 = Instant::now();
            black_box(routine());
            measured += t0.elapsed();
            iters += 1;
        }
        self.result = Some((measured, iters));
    }
}

#[derive(Clone)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    smoke: bool,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            smoke: std::env::args().any(|a| a == "--test"),
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timed iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    /// Sets the time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    fn run_one(&self, id: &str, f: impl FnOnce(&mut Bencher<'_>)) {
        let mut b = Bencher { config: &self.config, result: None };
        f(&mut b);
        match b.result {
            Some((total, iters)) if iters > 0 => {
                let mean = total / iters as u32;
                println!("{}/{id}: {mean:?}/iter ({iters} iterations)", self.name);
            }
            _ => println!("{}/{id}: no measurement (b.iter not called)", self.name),
        }
    }

    /// Benchmarks a closure under a string id.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnOnce(&mut Bencher<'_>)) {
        let id = id.into();
        self.run_one(&id.name, f);
    }

    /// Benchmarks a closure receiving a shared input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher<'_>, &I),
    ) {
        self.run_one(&id.name, |b| f(b, input));
    }

    /// Ends the group (reporting already happened per-benchmark).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: Config::default(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Benchmarks a standalone closure.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher<'_>)) -> &mut Self {
        let group = BenchmarkGroup {
            name: "bench".to_owned(),
            config: Config::default(),
            _marker: std::marker::PhantomData,
        };
        group.run_one(id, f);
        self
    }
}

/// Declares a benchmark group function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_reports_and_finishes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(10));
        let mut ran = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        assert!(ran >= 1);
    }
}
