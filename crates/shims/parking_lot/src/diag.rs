//! The lock-diagnostics engine: per-thread lock stacks and the global
//! lock-order graph. Compiled only under `cfg(debug_assertions)` or
//! the `lock-diagnostics` feature; see the crate docs for the checks.
//!
//! Internals deliberately use `std::sync` primitives directly (the one
//! crate allowed to): instrumenting the instrumentation would recurse.

use crate::LockKind;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

pub(crate) const ENABLED: bool = true;

/// One entry of a thread's held-lock stack.
struct Held {
    addr: usize,
    label: &'static str,
    kind: LockKind,
}

thread_local! {
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
}

/// `(from, to)` edge → the held-stack labels witnessed when the edge
/// was first recorded (innermost last, the acquired lock not
/// included). The witness is what makes an inversion panic actionable:
/// it names the code path that established the opposite order.
type Graph = HashMap<(&'static str, &'static str), Vec<&'static str>>;

fn graph() -> &'static Mutex<Graph> {
    static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();
    GRAPH.get_or_init(Mutex::default)
}

/// Every label reachable from `from` along recorded edges, with the
/// path that reaches `to` if one exists.
fn find_path(g: &Graph, from: &'static str, to: &'static str) -> Option<Vec<&'static str>> {
    let mut stack = vec![vec![from]];
    let mut visited = vec![from];
    while let Some(path) = stack.pop() {
        let last = *path.last().expect("paths are never empty");
        if last == to {
            return Some(path);
        }
        for &(a, b) in g.keys() {
            if a == last && !visited.contains(&b) {
                visited.push(b);
                let mut next = path.clone();
                next.push(b);
                stack.push(next);
            }
        }
    }
    None
}

pub(crate) fn on_acquire(addr: usize, label: &'static str, kind: LockKind) {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        for entry in held.iter() {
            if entry.addr != addr {
                continue;
            }
            // Same instance already held by this thread: a second
            // shared read is tolerated (read locks can share), every
            // other combination blocks on itself forever.
            let fatal = !(kind == LockKind::Read && entry.kind == LockKind::Read);
            assert!(
                !fatal,
                "lock-diagnostics: thread re-acquires {label:?} ({kind:?} while already \
                 holding it as {:?}) — this blocks on itself (self-deadlock)",
                entry.kind,
            );
        }
        if !held.is_empty() && label != crate::UNLABELED {
            record_edges(&held, label);
        }
        held.push(Held { addr, label, kind });
    });
}

/// Records `h → label` for every held lock `h`, panicking if a
/// recorded chain `label → … → h` already exists (a cycle in the
/// would-be acquisition order — two threads interleaving the two
/// chains can deadlock).
fn record_edges(held: &[Held], label: &'static str) {
    let stack: Vec<&'static str> = held.iter().map(|e| e.label).collect();
    let mut g = graph().lock().unwrap_or_else(|e| e.into_inner());
    for entry in held {
        let from = entry.label;
        if from == label || from == crate::UNLABELED || g.contains_key(&(from, label)) {
            continue;
        }
        if let Some(path) = find_path(&g, label, from) {
            let mut msg = format!(
                "lock-order inversion: acquiring {label:?} while holding {stack:?}, but the \
                 reverse order is already on record:"
            );
            for pair in path.windows(2) {
                let witness = &g[&(pair[0], pair[1])];
                msg.push_str(&format!(
                    "\n  {:?} -> {:?}, first acquired with held stack {witness:?}",
                    pair[0], pair[1],
                ));
            }
            msg.push_str(
                "\nTwo threads interleaving these chains can deadlock; make every code path \
                 acquire the locks in one canonical order (see ARCHITECTURE.md, \
                 \"Concurrency and lock order\").",
            );
            drop(g);
            panic!("{msg}");
        }
        g.insert((from, label), stack.clone());
    }
}

pub(crate) fn on_release(addr: usize) {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        // Guards may drop out of acquisition order (hand-over-hand
        // locking), so remove the *last* entry for this address, not
        // the top of the stack.
        if let Some(pos) = held.iter().rposition(|e| e.addr == addr) {
            held.remove(pos);
        }
    });
}

pub(crate) fn on_condvar_wait(guard_addr: usize, guard_label: &'static str) {
    HELD.with(|held| {
        let held = held.borrow();
        let others: Vec<&'static str> =
            held.iter().filter(|e| e.addr != guard_addr).map(|e| e.label).collect();
        assert!(
            others.is_empty(),
            "lock-diagnostics: Condvar::wait on {guard_label:?} while also holding {others:?} \
             — the wait releases only its own mutex, so a waker needing any of the others \
             deadlocks against this thread",
        );
    });
}

pub(crate) fn held_labels() -> Vec<&'static str> {
    HELD.with(|held| held.borrow().iter().map(|e| e.label).collect())
}

pub(crate) fn assert_no_locks_held(site: &str) {
    let held = held_labels();
    assert!(
        held.is_empty(),
        "lock-diagnostics: {site} promises to run with no shim lock held, but the thread \
         holds {held:?}",
    );
}
