//! Offline stand-in for the `parking_lot` crate.
//!
//! The build container has no crates.io access, so this shim wraps
//! `std::sync` primitives behind the (subset of the) `parking_lot` API
//! the workspace uses: non-poisoning `lock()` / `read()` / `write()`
//! that return guards directly. Poisoned locks panic, which matches
//! parking_lot's behavior of not having poisoning at all for the
//! panic-free paths this codebase takes.

use std::sync;

/// A mutual-exclusion lock with parking_lot's non-poisoning interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A condition variable with parking_lot's `&mut`-guard interface.
#[derive(Debug, Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Condvar {
        Condvar::default()
    }

    /// Blocks until notified, atomically releasing the guarded mutex.
    /// Like all condvars, spurious wakeups are possible — callers
    /// re-check their predicate in a loop.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // std's wait consumes the guard and returns it; parking_lot's
        // takes `&mut`. Move the guard out and back by pointer — safe
        // because `sync::Condvar::wait` only returns Err(PoisonError)
        // (unwrapped below, never a panic), so exactly one live guard
        // exists at every exit path.
        unsafe {
            let owned = std::ptr::read(guard);
            let back = self.0.wait(owned).unwrap_or_else(|e| e.into_inner());
            std::ptr::write(guard, back);
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// A reader-writer lock with parking_lot's non-poisoning interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn condvar_wakes_waiters() {
        use std::sync::Arc;
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let waiter = std::thread::spawn(move || {
            let mut ready = m2.lock();
            while !*ready {
                cv2.wait(&mut ready);
            }
            *ready
        });
        *m.lock() = true;
        cv.notify_all();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);

        let rw = RwLock::new(vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
    }
}
