//! Offline stand-in for the `parking_lot` crate, with a first-party
//! lock-correctness diagnostics layer.
//!
//! The build container has no crates.io access, so this shim wraps
//! `std::sync` primitives behind the (subset of the) `parking_lot` API
//! the workspace uses: non-poisoning `lock()` / `read()` / `write()`
//! that return guards directly. Poisoned locks are recovered with
//! `into_inner`, which matches parking_lot's behavior of not having
//! poisoning at all for the panic-free paths this codebase takes.
//!
//! ## Lock diagnostics
//!
//! Because every lock in the workspace is constructed through this
//! shim, it is also the natural choke point for concurrency
//! correctness checks. Under `cfg(debug_assertions)` (so: every
//! `cargo test` run) or the `lock-diagnostics` feature, the shim
//! instruments every acquisition:
//!
//! * **Site labels.** [`Mutex::labeled`] / [`RwLock::labeled`] attach
//!   a static label (`"wal.state"`, `"table.indexes"`, …) naming the
//!   lock's role. The repo-invariant lint (`cpdb-lint`) requires every
//!   lock construction outside this crate to use the labeled form.
//! * **Per-thread lock stack.** Acquisitions push onto a thread-local
//!   stack, releases pop it. Re-acquiring a `Mutex` (or re-entering a
//!   `RwLock` for writing) the thread already holds panics
//!   immediately — that is a guaranteed self-deadlock.
//! * **Global lock-order graph.** Acquiring `B` while holding `A`
//!   records the edge `A → B` together with the full held stack as a
//!   witness. If the edge would close a cycle (some chain `B → … → A`
//!   was observed before), the acquisition panics with both
//!   acquisition stacks — the interleaving-independent signature of a
//!   potential deadlock, caught on the *first* run that exercises both
//!   orders, not the unlucky run that interleaves them. Edges between
//!   two locks with the *same* label are not recorded (distinct
//!   instances of one class, e.g. two tables' gates, order by address,
//!   which a label-level graph cannot adjudicate); unlabeled locks
//!   participate in the stack but not in the graph.
//! * **Condvar misuse.** [`Condvar::wait`] panics if the thread holds
//!   any shim lock besides the guard's own mutex (the waker would have
//!   to take that second lock to make the predicate true — a classic
//!   lost-wakeup/deadlock shape), and debug-asserts that every wait on
//!   one condvar uses the same mutex the condvar was first associated
//!   with (the `&mut`-guard API would otherwise let a guard from an
//!   unrelated mutex slip through silently).
//! * **Lock-free sections.** [`assert_no_locks_held`] lets callers pin
//!   protocol promises of the form "this fsync runs unlocked"
//!   (`cpdb-storage`'s WAL does exactly that).
//!
//! With diagnostics off (release builds without the feature) every
//! hook compiles to nothing and the guards are thin newtypes over the
//! `std::sync` guards.

#![forbid(unsafe_code)]

use std::sync;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// How an acquisition takes the lock — drives the self-deadlock check
/// (`Read` after `Read` on one instance is allowed; everything else on
/// an already-held instance is fatal).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LockKind {
    /// Exclusive `Mutex::lock`.
    Mutex,
    /// Shared `RwLock::read`.
    Read,
    /// Exclusive `RwLock::write`.
    Write,
}

/// Label given to locks constructed without [`Mutex::labeled`] /
/// [`RwLock::labeled`]. Unlabeled locks are tracked on the per-thread
/// stack (so condvar and lock-free-section checks still see them) but
/// excluded from the order graph, where one shared node for every
/// anonymous lock would manufacture false cycles.
pub const UNLABELED: &str = "<unlabeled>";

#[cfg(any(debug_assertions, feature = "lock-diagnostics"))]
mod diag;

/// No-op twins of the diagnostics hooks for release builds without the
/// `lock-diagnostics` feature: the instrumentation costs nothing when
/// it is off.
#[cfg(not(any(debug_assertions, feature = "lock-diagnostics")))]
mod diag {
    pub(crate) fn on_acquire(_addr: usize, _label: &'static str, _kind: super::LockKind) {}
    pub(crate) fn on_release(_addr: usize) {}
    pub(crate) fn on_condvar_wait(_guard_addr: usize, _guard_label: &'static str) {}
    pub(crate) fn held_labels() -> Vec<&'static str> {
        Vec::new()
    }
    pub(crate) fn assert_no_locks_held(_site: &str) {}
    pub(crate) const ENABLED: bool = false;
}

/// `true` when the diagnostics layer is compiled in (debug builds or
/// the `lock-diagnostics` feature). Tests gate their should-panic
/// assertions on this.
pub fn diagnostics_enabled() -> bool {
    diag::ENABLED
}

/// The labels of every shim lock the current thread holds, innermost
/// last. Empty when diagnostics are off.
pub fn held_lock_labels() -> Vec<&'static str> {
    diag::held_labels()
}

/// Panics (diagnostics builds only) unless the current thread holds no
/// shim lock at all. Call this at the top of sections whose contract
/// is "runs unlocked" — e.g. the WAL's coalesced fsync, which must
/// never block appenders for the duration of a disk flush.
pub fn assert_no_locks_held(site: &str) {
    diag::assert_no_locks_held(site);
}

/// A mutual-exclusion lock with parking_lot's non-poisoning interface.
#[derive(Debug)]
pub struct Mutex<T: ?Sized> {
    label: &'static str,
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]. Dereferences to the protected
/// value; releasing is dropping.
pub struct MutexGuard<'a, T: ?Sized> {
    addr: usize,
    label: &'static str,
    /// `Some` except transiently inside [`Condvar`] waits, which move
    /// the std guard out and back while the thread is blocked.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new, unlabeled mutex. Prefer [`Mutex::labeled`] in
    /// repo code — `cpdb-lint` enforces it.
    pub fn new(value: T) -> Mutex<T> {
        Mutex { label: UNLABELED, inner: sync::Mutex::new(value) }
    }

    /// Creates a mutex carrying a static site label
    /// (`Mutex::labeled("wal.state", …)`) that names it in lock-order
    /// diagnostics and deadlock panics.
    pub fn labeled(label: &'static str, value: T) -> Mutex<T> {
        Mutex { label, inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// The diagnostics label this lock was constructed with.
    pub fn label(&self) -> &'static str {
        self.label
    }

    fn addr(&self) -> usize {
        self as *const Mutex<T> as *const () as usize
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        diag::on_acquire(self.addr(), self.label, LockKind::Mutex);
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { addr: self.addr(), label: self.label, inner: Some(inner) }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard holds the lock outside a condvar wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard holds the lock outside a condvar wait")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        diag::on_release(self.addr);
    }
}

/// Whether a [`Condvar::wait_for`] returned because its timeout
/// elapsed rather than because the thread was notified.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` iff the wait ended by timeout.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable with parking_lot's `&mut`-guard interface.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
    /// Address of the mutex this condvar is associated with (set by
    /// the first wait); diagnostics builds assert every later wait
    /// uses the same one. `0` = not yet associated.
    owner: AtomicUsize,
}

impl Condvar {
    /// Creates a new condition variable.
    pub fn new() -> Condvar {
        Condvar::default()
    }

    /// Diagnostics: a condvar is permanently associated with the mutex
    /// of its first wait. Waiting with a guard from a *different*
    /// mutex means notifiers and waiters do not agree on the lock that
    /// protects the predicate — silent misuse the `&mut`-guard API
    /// cannot reject at compile time.
    fn check_same_mutex<T: ?Sized>(&self, guard: &MutexGuard<'_, T>) {
        if cfg!(any(debug_assertions, feature = "lock-diagnostics")) {
            let prev = self
                .owner
                .compare_exchange(0, guard.addr, Ordering::AcqRel, Ordering::Acquire)
                .unwrap_or_else(|prev| prev);
            assert!(
                prev == 0 || prev == guard.addr,
                "lock-diagnostics: Condvar::wait with a guard of mutex {:?}, but this condvar \
                 is already associated with a different mutex — waiters and notifiers must \
                 agree on one lock",
                guard.label,
            );
        }
        diag::on_condvar_wait(guard.addr, guard.label);
    }

    /// Blocks until notified, atomically releasing the guarded mutex.
    /// Like all condvars, spurious wakeups are possible — callers
    /// re-check their predicate in a loop.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        self.check_same_mutex(guard);
        let owned = guard.inner.take().expect("guard holds the lock outside a condvar wait");
        let back = self.inner.wait(owned).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(back);
    }

    /// Blocks until notified or `timeout` elapses. Spurious wakeups
    /// are possible; check the predicate *and* the result.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        self.check_same_mutex(guard);
        let owned = guard.inner.take().expect("guard holds the lock outside a condvar wait");
        let (back, result) =
            self.inner.wait_timeout(owned, timeout).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(back);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock with parking_lot's non-poisoning interface.
#[derive(Debug)]
pub struct RwLock<T: ?Sized> {
    label: &'static str,
    inner: sync::RwLock<T>,
}

/// Guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    addr: usize,
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    addr: usize,
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new, unlabeled reader-writer lock. Prefer
    /// [`RwLock::labeled`] in repo code — `cpdb-lint` enforces it.
    pub fn new(value: T) -> RwLock<T> {
        RwLock { label: UNLABELED, inner: sync::RwLock::new(value) }
    }

    /// Creates a reader-writer lock carrying a static site label (see
    /// [`Mutex::labeled`]).
    pub fn labeled(label: &'static str, value: T) -> RwLock<T> {
        RwLock { label, inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// The diagnostics label this lock was constructed with.
    pub fn label(&self) -> &'static str {
        self.label
    }

    fn addr(&self) -> usize {
        self as *const RwLock<T> as *const () as usize
    }

    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        diag::on_acquire(self.addr(), self.label, LockKind::Read);
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        RwLockReadGuard { addr: self.addr(), inner }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        diag::on_acquire(self.addr(), self.label, LockKind::Write);
        let inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        RwLockWriteGuard { addr: self.addr(), inner }
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        diag::on_release(self.addr);
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        diag::on_release(self.addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn condvar_wakes_waiters() {
        let m = Arc::new(Mutex::labeled("test.cv_ready", false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let waiter = std::thread::spawn(move || {
            let mut ready = m2.lock();
            while !*ready {
                cv2.wait(&mut ready);
            }
            *ready
        });
        // Loop until the waiter is observably parked or simply race:
        // notify_all after setting the flag is enough either way.
        *m.lock() = true;
        cv.notify_all();
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::labeled("test.cv_timeout", ());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::labeled("test.basics_mutex", 1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);

        let rw = RwLock::labeled("test.basics_rwlock", vec![1, 2]);
        assert_eq!(rw.read().len(), 2);
        rw.write().push(3);
        assert_eq!(rw.read().len(), 3);
        assert_eq!(rw.label(), "test.basics_rwlock");
    }

    #[test]
    fn unlabeled_constructors_still_work() {
        let m = Mutex::new(7);
        assert_eq!(m.label(), UNLABELED);
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
        let rw: RwLock<String> = RwLock::default();
        assert!(rw.read().is_empty());
    }

    #[test]
    fn held_labels_track_the_stack() {
        if !diagnostics_enabled() {
            return;
        }
        let a = Mutex::labeled("test.stack_a", ());
        let b = RwLock::labeled("test.stack_b", ());
        assert!(held_lock_labels().is_empty());
        let ga = a.lock();
        let gb = b.read();
        assert_eq!(held_lock_labels(), vec!["test.stack_a", "test.stack_b"]);
        // Out-of-order release works (hand-over-hand locking).
        drop(ga);
        assert_eq!(held_lock_labels(), vec!["test.stack_b"]);
        drop(gb);
        assert!(held_lock_labels().is_empty());
        assert_no_locks_held("test.stack");
    }

    fn panics(f: impl FnOnce() + Send + 'static) -> String {
        let err = std::thread::spawn(f).join().expect_err("must panic");
        match err.downcast::<String>() {
            Ok(s) => *s,
            Err(err) => {
                err.downcast::<&'static str>().expect("panic payload is a string").to_string()
            }
        }
    }

    #[test]
    fn lock_order_inversion_panics_with_both_labels() {
        if !diagnostics_enabled() {
            return;
        }
        let a = Arc::new(Mutex::labeled("test.inv_first", ()));
        let b = Arc::new(Mutex::labeled("test.inv_second", ()));
        // Learn the order first → second…
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        // …then acquire in the inverted order on another thread.
        let msg = panics(move || {
            let _gb = b.lock();
            let _ga = a.lock();
        });
        assert!(msg.contains("lock-order inversion"), "{msg}");
        assert!(msg.contains("test.inv_first") && msg.contains("test.inv_second"), "{msg}");
    }

    #[test]
    fn transitive_inversion_is_caught() {
        if !diagnostics_enabled() {
            return;
        }
        let a = Arc::new(Mutex::labeled("test.tri_a", ()));
        let b = Arc::new(Mutex::labeled("test.tri_b", ()));
        let c = Arc::new(Mutex::labeled("test.tri_c", ()));
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        {
            let _gb = b.lock();
            let _gc = c.lock();
        }
        // a → b → c is on record; c → a closes the cycle.
        let msg = panics(move || {
            let _gc = c.lock();
            let _ga = a.lock();
        });
        assert!(msg.contains("lock-order inversion"), "{msg}");
        assert!(msg.contains("test.tri_a") && msg.contains("test.tri_c"), "{msg}");
    }

    #[test]
    fn mutex_reentry_panics() {
        if !diagnostics_enabled() {
            return;
        }
        let m = Arc::new(Mutex::labeled("test.reentry", ()));
        let msg = panics(move || {
            let _g = m.lock();
            let _g2 = m.lock();
        });
        assert!(msg.contains("re-acquir"), "{msg}");
        assert!(msg.contains("test.reentry"), "{msg}");
    }

    #[test]
    fn same_label_different_instances_do_not_conflict() {
        // Two tables' gates share a label; nesting them in either
        // order must not be reported (a label-level graph cannot
        // order instances of one class).
        let t1 = Mutex::labeled("test.same_label", 1);
        let t2 = Mutex::labeled("test.same_label", 2);
        {
            let _g1 = t1.lock();
            let _g2 = t2.lock();
        }
        {
            let _g2 = t2.lock();
            let _g1 = t1.lock();
        }
    }

    #[test]
    fn condvar_wait_holding_second_lock_panics() {
        if !diagnostics_enabled() {
            return;
        }
        let m = Arc::new(Mutex::labeled("test.cv2_mutex", ()));
        let extra = Arc::new(Mutex::labeled("test.cv2_extra", ()));
        let cv = Arc::new(Condvar::new());
        let msg = panics(move || {
            let _held = extra.lock();
            let mut g = m.lock();
            cv.wait(&mut g);
        });
        assert!(msg.contains("Condvar::wait"), "{msg}");
        assert!(msg.contains("test.cv2_extra"), "{msg}");
    }

    #[test]
    fn condvar_rejects_a_guard_from_a_different_mutex() {
        if !diagnostics_enabled() {
            return;
        }
        let m1 = Arc::new(Mutex::labeled("test.cvmix_first", ()));
        let m2 = Arc::new(Mutex::labeled("test.cvmix_second", ()));
        let cv = Arc::new(Condvar::new());
        let (m1t, cvt) = (Arc::clone(&m1), Arc::clone(&cv));
        // Associate the condvar with m1 via a timed wait…
        {
            let mut g = m1t.lock();
            cvt.wait_for(&mut g, Duration::from_millis(1));
        }
        // …then wait with a guard from m2: must panic, not silently
        // desynchronize waiters from notifiers.
        let msg = panics(move || {
            let mut g = m2.lock();
            cv.wait_for(&mut g, Duration::from_millis(1));
        });
        assert!(msg.contains("different mutex"), "{msg}");
        assert!(msg.contains("test.cvmix_second"), "{msg}");
        drop(m1);
    }

    #[test]
    fn assert_no_locks_held_panics_under_a_lock() {
        if !diagnostics_enabled() {
            return;
        }
        let m = Arc::new(Mutex::labeled("test.syncfree", ()));
        let msg = panics(move || {
            let _g = m.lock();
            assert_no_locks_held("test.sync_site");
        });
        assert!(msg.contains("test.sync_site"), "{msg}");
        assert!(msg.contains("test.syncfree"), "{msg}");
    }

    #[test]
    fn guard_survives_a_panic_and_unwinds_the_stack() {
        if !diagnostics_enabled() {
            return;
        }
        // A panic while holding locks must pop the thread's stack via
        // guard drops during unwind — verified here on this thread by
        // catching the unwind.
        let m = Mutex::labeled("test.unwind", ());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = m.lock();
            panic!("deliberate");
        }));
        assert!(result.is_err());
        assert!(held_lock_labels().is_empty(), "unwind must release the stack");
    }
}
