//! A relational database wrapped as a tree view — the
//! **OrganelleDB-on-MySQL** stand-in.
//!
//! Section 2: "the data values in a relational database can be addressed
//! using four-level paths where `DB/R/tid/F` addresses the field value
//! `F` in the tuple with identifier or key `tid` in table `R` of
//! database `DB`." [`RelationalSource`] exposes exactly that view over a
//! `cpdb-storage` [`Engine`]: one subtree per table, one child per row
//! (keyed by the first column), one leaf per remaining field.
//!
//! The wrapper is read-only, as sources are in CPDB; it implements
//! [`SourceDb`] so the editor can browse and copy from it.

use crate::error::{Result, XmlDbError};
use crate::wrapper::SourceDb;
use cpdb_storage::{Datum, Engine, Meter, TableHandle};
use cpdb_tree::{Label, Path, Tree, TreeError, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

fn datum_to_value(d: &Datum) -> Value {
    match d {
        Datum::Null => Value::str(""),
        Datum::U64(v) => Value::Int(*v as i64),
        Datum::I64(v) => Value::Int(*v),
        Datum::Str(s) => Value::str(s),
    }
}

/// Key for a row in the tree view: the first column's value, rendered.
fn row_key(row: &[Datum]) -> String {
    row.first().map_or_else(|| "?".to_owned(), |d| d.to_string())
}

/// A read-only tree view of a relational engine.
pub struct RelationalSource {
    name: Label,
    engine: Arc<Engine>,
    client: Meter,
}

impl RelationalSource {
    /// Wraps `engine` as the database named `name`.
    pub fn new(name: impl Into<Label>, engine: Arc<Engine>) -> RelationalSource {
        RelationalSource { name: name.into(), engine, client: Meter::new() }
    }

    /// Sets the simulated per-round-trip latency of the client link.
    pub fn set_latency(&self, latency: std::time::Duration) {
        self.client.set_latency(latency);
    }

    fn table(&self, name: &str) -> Result<Arc<TableHandle>> {
        self.engine.table(name).map_err(Into::into)
    }

    /// The tree of one row: `{field: value, …}` over non-key columns.
    fn row_tree(table: &TableHandle, row: &[Datum]) -> Tree {
        let mut fields = BTreeMap::new();
        for (col, datum) in table.schema().columns().iter().zip(row).skip(1) {
            fields.insert(Label::new(&col.name), Tree::Leaf(datum_to_value(datum)));
        }
        Tree::from_map(fields)
    }

    /// The tree of one table: `{rowkey: rowtree, …}`.
    fn table_tree(&self, table: &TableHandle) -> Result<Tree> {
        let mut rows = BTreeMap::new();
        let mut dup = None;
        table.scan(|_, row| {
            let key = Label::new(&row_key(&row));
            if rows.insert(key, Self::row_tree(table, &row)).is_some() {
                dup = Some(key);
                return false;
            }
            true
        })?;
        if let Some(key) = dup {
            return Err(XmlDbError::Inconsistent {
                reason: format!("duplicate row key {key} breaks the fully-keyed view"),
            });
        }
        Ok(Tree::from_map(rows))
    }
}

impl SourceDb for RelationalSource {
    fn db_name(&self) -> Label {
        self.name
    }

    fn tree_from_db(&self) -> Result<Tree> {
        self.client.round_trip();
        let mut tables = BTreeMap::new();
        for name in self.engine.table_names() {
            let handle = self.table(&name)?;
            tables.insert(Label::new(&name), self.table_tree(&handle)?);
        }
        Ok(Tree::from_map(tables))
    }

    fn subtree(&self, path: &Path) -> Result<Tree> {
        self.client.round_trip();
        if path.first() != Some(self.name) {
            return Err(TreeError::WrongDatabase { expected: self.name, path: path.clone() }.into());
        }
        let segs: Vec<Label> = path.iter().skip(1).collect();
        let not_found = || XmlDbError::Tree(TreeError::PathNotFound { path: path.clone() });
        match segs.len() {
            0 => self.tree_from_db(),
            _ => {
                let table = self.table(segs[0].as_str()).map_err(|_| not_found())?;
                if segs.len() == 1 {
                    return self.table_tree(&table);
                }
                // Find the row by key (first column).
                let want = segs[1].as_str();
                let mut found: Option<Vec<Datum>> = None;
                table.scan(|_, row| {
                    if row_key(&row) == want {
                        found = Some(row);
                        false
                    } else {
                        true
                    }
                })?;
                let row = found.ok_or_else(not_found)?;
                let row_tree = Self::row_tree(&table, &row);
                match segs.len() {
                    2 => Ok(row_tree),
                    3 => row_tree.child(segs[2]).cloned().ok_or_else(not_found),
                    _ => Err(not_found()),
                }
            }
        }
    }

    fn contains(&self, path: &Path) -> bool {
        self.subtree(path).is_ok()
    }

    fn round_trips(&self) -> u64 {
        self.client.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpdb_storage::{Column, DataType, Schema};
    use cpdb_tree::tree;

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    fn organelle_engine() -> Arc<Engine> {
        let engine = Engine::in_memory();
        let proteins = engine
            .create_table(
                "proteins",
                Schema::new(vec![
                    Column::new("acc", DataType::Str),
                    Column::new("name", DataType::Str),
                    Column::new("organelle", DataType::Str),
                    Column::new("length", DataType::I64),
                ]),
            )
            .unwrap();
        proteins
            .insert(&[
                Datum::str("O95477"),
                Datum::str("ABC1"),
                Datum::str("membrane"),
                Datum::I64(2261),
            ])
            .unwrap();
        proteins
            .insert(&[
                Datum::str("P02741"),
                Datum::str("CRP"),
                Datum::str("secreted"),
                Datum::I64(224),
            ])
            .unwrap();
        Arc::new(engine)
    }

    #[test]
    fn four_level_paths_resolve() {
        let src = RelationalSource::new("OrganelleDB", organelle_engine());
        // DB/R/tid/F — the paper's addressing scheme.
        let leaf = src.subtree(&p("OrganelleDB/proteins/O95477/name")).unwrap();
        assert_eq!(leaf, Tree::leaf("ABC1"));
        let row = src.subtree(&p("OrganelleDB/proteins/P02741")).unwrap();
        assert_eq!(row, tree! { "name" => "CRP", "organelle" => "secreted", "length" => 224 });
    }

    #[test]
    fn whole_view_is_fully_keyed() {
        let src = RelationalSource::new("OrganelleDB", organelle_engine());
        let t = src.tree_from_db().unwrap();
        assert_eq!(t.node_count(), 1 + 1 + 2 + 6, "db, table, 2 rows, 6 fields");
        assert!(src.contains(&p("OrganelleDB/proteins")));
        assert!(!src.contains(&p("OrganelleDB/nope")));
        assert!(!src.contains(&p("OrganelleDB/proteins/XXXX")));
    }

    #[test]
    fn copy_node_flattens_a_row() {
        let src = RelationalSource::new("OrganelleDB", organelle_engine());
        let nodes = src.copy_node(&p("OrganelleDB/proteins/O95477")).unwrap();
        // Row node + three fields = "subtrees of size four", as in the
        // paper's experiments.
        assert_eq!(nodes.len(), 4);
        assert_eq!(nodes[0].value, None);
        assert!(nodes.iter().skip(1).all(|n| n.value.is_some()));
    }

    #[test]
    fn wrong_database_is_rejected() {
        let src = RelationalSource::new("OrganelleDB", organelle_engine());
        assert!(matches!(
            src.subtree(&p("Other/proteins")),
            Err(XmlDbError::Tree(TreeError::WrongDatabase { .. }))
        ));
    }
}
