//! # cpdb-xmldb — native tree database and database wrappers
//!
//! The substrate standing in for **Timber** (the native XML DBMS hosting
//! the target database in Buneman, Chapman & Cheney, SIGMOD 2006) plus
//! the Figure 6 wrapper interface that CPDB uses to talk to *any*
//! database as a fully-keyed tree view:
//!
//! * [`XmlDb`] — a persistent tree store over `cpdb-storage` node
//!   records; implements both [`SourceDb`] and [`TargetDb`];
//! * [`RelationalSource`] — a read-only four-level (`DB/R/tid/F`) tree
//!   view of a relational engine, standing in for OrganelleDB on MySQL;
//! * round-trip accounting per wrapper call (one interaction per node
//!   touched), mirroring the client↔server traffic the paper measures.
//!
//! ```
//! use cpdb_storage::Engine;
//! use cpdb_tree::tree;
//! use cpdb_xmldb::{SourceDb, TargetDb, XmlDb};
//!
//! let engine = Engine::in_memory();
//! let db = XmlDb::create("T", &engine).unwrap();
//! db.load(&tree! { "c1" => { "x" => 1 } }).unwrap();
//! let nodes = db.copy_node(&"T/c1".parse().unwrap()).unwrap();
//! assert_eq!(nodes.len(), 2); // interior node + one leaf
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;
mod relational;
mod wrapper;
mod xmldb;

pub use error::{Result, XmlDbError};
pub use relational::RelationalSource;
pub use wrapper::{rebuild_subtree, CopiedNode, SourceDb, TargetDb};
pub use xmldb::XmlDb;
