//! Errors for the tree-database layer.

use cpdb_storage::StorageError;
use cpdb_tree::TreeError;
use std::fmt;

/// Failure of a tree-database operation.
#[derive(Clone)]
pub enum XmlDbError {
    /// The underlying storage engine failed.
    Storage(StorageError),
    /// A path/tree-level failure (missing path, duplicate edge, …).
    Tree(TreeError),
    /// The node store is internally inconsistent (dangling parent,
    /// duplicate root, …) — indicates corruption.
    Inconsistent {
        /// Description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for XmlDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlDbError::Storage(e) => write!(f, "storage: {e}"),
            XmlDbError::Tree(e) => write!(f, "{e}"),
            XmlDbError::Inconsistent { reason } => write!(f, "node store inconsistent: {reason}"),
        }
    }
}

impl fmt::Debug for XmlDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for XmlDbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            XmlDbError::Storage(e) => Some(e),
            XmlDbError::Tree(e) => Some(e),
            XmlDbError::Inconsistent { .. } => None,
        }
    }
}

impl From<StorageError> for XmlDbError {
    fn from(e: StorageError) -> XmlDbError {
        XmlDbError::Storage(e)
    }
}

impl From<TreeError> for XmlDbError {
    fn from(e: TreeError) -> XmlDbError {
        XmlDbError::Tree(e)
    }
}

/// Result alias for tree-database operations.
pub type Result<T> = std::result::Result<T, XmlDbError>;
