//! The wrapper interface of Figure 6.
//!
//! CPDB talks to every database through a wrapper that presents a
//! "fully-keyed XML view" of the underlying data. The paper's Figure 6
//! specifies the contract:
//!
//! * **SourceDB** — `treeFromDB()` returns a tree with unique
//!   identifiers; `copyNode()` returns the list of nodes the user
//!   copied (one entry per node of the selected subtree, each carrying
//!   its identifying path and data value).
//! * **TargetDB** — additionally `addNode(name)`, `deleteNode()`, and
//!   `pasteNode(X)` translate tree edits into native updates.
//!
//! Implementations here: [`crate::XmlDb`] (native tree store — the
//! Timber stand-in) and [`crate::RelationalSource`] (a relational
//! database viewed as a four-level tree — the OrganelleDB-on-MySQL
//! stand-in).

use crate::error::Result;
use cpdb_tree::{Label, Path, Tree, Value};
use cpdb_update::InsertContent;

/// One node of a copied selection, as returned by `copyNode()`:
/// "Each node contains the identifying path and data value."
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CopiedNode {
    /// The node's qualified path in its source database.
    pub path: Path,
    /// Its data value, for leaves; `None` for interior nodes.
    pub value: Option<Value>,
}

/// A database that CPDB can browse and copy from (Figure 6, `SourceDB`).
pub trait SourceDb {
    /// The database's name (first segment of its qualified paths).
    fn db_name(&self) -> Label;

    /// `treeFromDB()`: the full fully-keyed tree view.
    fn tree_from_db(&self) -> Result<Tree>;

    /// The subtree at a qualified path.
    fn subtree(&self, path: &Path) -> Result<Tree>;

    /// `copyNode()`: the flattened node list for the subtree the user
    /// selected — size 1 for a leaf, one entry per descendant otherwise.
    fn copy_node(&self, path: &Path) -> Result<Vec<CopiedNode>> {
        let sub = self.subtree(path)?;
        let mut out = Vec::with_capacity(sub.node_count());
        sub.walk(path, &mut |p, t| {
            out.push(CopiedNode { path: p.clone(), value: t.as_value().cloned() });
        });
        Ok(out)
    }

    /// Whether a qualified path resolves.
    fn contains(&self, path: &Path) -> bool;

    /// Number of round trips this wrapper has made to its database.
    fn round_trips(&self) -> u64;
}

/// Rebuilds the subtree a `copyNode()` call described. `nodes` must be
/// in preorder (parents before children), as [`SourceDb::copy_node`]
/// produces; all paths must extend `src`, the selection root.
pub fn rebuild_subtree(src: &Path, nodes: &[CopiedNode]) -> Result<Tree> {
    use crate::error::XmlDbError;
    use cpdb_tree::TreeError;

    if nodes.len() == 1 {
        return Ok(match &nodes[0].value {
            Some(v) => Tree::Leaf(v.clone()),
            None => Tree::empty(),
        });
    }
    let mut t = Tree::empty();
    for node in nodes {
        let rel = node.path.strip_prefix(src).ok_or_else(|| {
            XmlDbError::Tree(TreeError::BadPath {
                text: node.path.to_string(),
                reason: "copied node outside the copied subtree",
            })
        })?;
        if rel.is_empty() {
            continue; // the selection root itself
        }
        let parent = rel.parent().expect("non-root");
        let label = rel.last().expect("non-root");
        let content = node.value.clone().map_or(Tree::empty(), Tree::Leaf);
        t.insert_edge(&parent, label, content).map_err(XmlDbError::Tree)?;
    }
    Ok(t)
}

/// A database that CPDB can edit (Figure 6, `TargetDB`).
pub trait TargetDb: SourceDb {
    /// `addNode(nodename)`: insert a new node (empty or leaf) under the
    /// node at `parent`. Fails on missing parent or duplicate edge.
    fn add_node(&self, parent: &Path, label: Label, content: &InsertContent) -> Result<()>;

    /// `deleteNode()`: remove the node at `path` and its subtree,
    /// returning what was removed (provenance needs to enumerate it).
    fn delete_node(&self, path: &Path) -> Result<Tree>;

    /// `pasteNode(X)`: write `subtree` at `path`, replacing an existing
    /// node or creating the final edge under an existing parent.
    /// Returns the replaced subtree, if any.
    fn paste_node(&self, path: &Path, subtree: &Tree) -> Result<Option<Tree>>;
}
