//! The native tree database — the **Timber** stand-in.
//!
//! Trees are stored as node records in a `cpdb-storage` table:
//!
//! ```text
//! nodes(id U64, parent U64, label Str, kind Str, vint I64?, vstr Str?)
//! ```
//!
//! with indexes on `id` (unique), `parent`, and `(parent, label)`
//! (unique — the tree invariant that sibling labels are distinct).
//! Paths resolve by walking `(parent, label)` lookups from the root,
//! exactly what a fully-keyed XML view needs.
//!
//! The wrapper-level round-trip accounting mirrors the paper's client ↔
//! Timber SOAP traffic: every [`SourceDb`]/[`TargetDb`] call counts one
//! client round trip **per node touched** (Figure 6's `pasteNode(Node X)`
//! writes one node at a time, so pasting a size-4 subtree costs 4
//! interactions — the reason copies dominate the timing figures).

use crate::error::{Result, XmlDbError};
use crate::wrapper::{CopiedNode, SourceDb, TargetDb};
use cpdb_storage::{Column, DataType, Datum, Engine, Meter, RowId, Schema, TableHandle};
use cpdb_tree::{Label, Path, Tree, TreeError, Value};
use cpdb_update::InsertContent;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const NODES: &str = "nodes";
const BY_ID: &str = "by_id";
const BY_PARENT: &str = "by_parent";
const BY_PARENT_LABEL: &str = "by_parent_label";
/// Sentinel parent id for the root node.
const NO_PARENT: u64 = 0;

fn nodes_schema() -> Schema {
    Schema::new(vec![
        Column::new("id", DataType::U64),
        Column::new("parent", DataType::U64),
        Column::new("label", DataType::Str),
        Column::new("kind", DataType::Str), // "N" interior, "L" leaf
        Column::nullable("vint", DataType::I64),
        Column::nullable("vstr", DataType::Str),
    ])
}

/// One decoded node record.
struct NodeRec {
    id: u64,
    label: Label,
    value: Option<Value>,
}

fn decode_node(row: &[Datum]) -> Result<NodeRec> {
    let bad = |reason: &str| XmlDbError::Inconsistent { reason: reason.to_owned() };
    let id = row[0].as_u64().ok_or_else(|| bad("id not u64"))?;
    let label = Label::new(row[2].as_str().ok_or_else(|| bad("label not str"))?);
    let kind = row[3].as_str().ok_or_else(|| bad("kind not str"))?;
    let value = match kind {
        "N" => None,
        "L" => Some(match (&row[4], &row[5]) {
            (Datum::I64(i), Datum::Null) => Value::Int(*i),
            (Datum::Null, Datum::Str(s)) => Value::str(s),
            _ => return Err(bad("leaf must have exactly one of vint/vstr")),
        }),
        _ => return Err(bad("kind must be N or L")),
    };
    Ok(NodeRec { id, label, value })
}

fn encode_node(id: u64, parent: u64, label: Label, value: Option<&Value>) -> Vec<Datum> {
    let (kind, vint, vstr) = match value {
        None => ("N", Datum::Null, Datum::Null),
        Some(Value::Int(i)) => ("L", Datum::I64(*i), Datum::Null),
        Some(Value::Str(s)) => ("L", Datum::Null, Datum::str(s.as_ref())),
    };
    vec![
        Datum::U64(id),
        Datum::U64(parent),
        Datum::str(label.as_str()),
        Datum::str(kind),
        vint,
        vstr,
    ]
}

/// A persistent tree database exposing the Figure 6 wrapper API.
pub struct XmlDb {
    name: Label,
    nodes: Arc<TableHandle>,
    next_id: AtomicU64,
    root_id: u64,
    /// Client-side round trips (the SOAP/JDBC hop the paper measures).
    client: Meter,
}

impl XmlDb {
    /// Creates an empty database called `name` inside `engine`.
    pub fn create(name: impl Into<Label>, engine: &Engine) -> Result<XmlDb> {
        let name = name.into();
        let nodes = engine.create_table(NODES, nodes_schema())?;
        nodes.add_index(BY_ID, &["id"], true, false)?;
        nodes.add_index(BY_PARENT, &["parent"], false, false)?;
        nodes.add_index(BY_PARENT_LABEL, &["parent", "label"], true, false)?;
        let root_id = 1;
        nodes.insert(&encode_node(root_id, NO_PARENT, name, None))?;
        Ok(XmlDb {
            name,
            nodes,
            next_id: AtomicU64::new(root_id + 1),
            root_id,
            client: Meter::new(),
        })
    }

    /// Opens an existing database named `name` from `engine` (rebuilding
    /// indexes from the node table).
    pub fn open(name: impl Into<Label>, engine: &Engine) -> Result<XmlDb> {
        let name = name.into();
        let nodes = engine.open_table(NODES)?;
        nodes.add_index(BY_ID, &["id"], true, false)?;
        nodes.add_index(BY_PARENT, &["parent"], false, false)?;
        nodes.add_index(BY_PARENT_LABEL, &["parent", "label"], true, false)?;
        let mut max_id = 0u64;
        let mut root_id = None;
        nodes.scan(|_, row| {
            let id = row[0].as_u64().unwrap_or(0);
            max_id = max_id.max(id);
            if row[1] == Datum::U64(NO_PARENT) {
                root_id = Some(id);
            }
            true
        })?;
        let root_id = root_id.ok_or(XmlDbError::Inconsistent { reason: "no root node".into() })?;
        Ok(XmlDb {
            name,
            nodes,
            next_id: AtomicU64::new(max_id + 1),
            root_id,
            client: Meter::new(),
        })
    }

    /// Sets the simulated per-round-trip latency of the client link.
    pub fn set_latency(&self, latency: std::time::Duration) {
        self.client.set_latency(latency);
    }

    /// Bulk-loads `tree` under the root (the database must be empty).
    pub fn load(&self, tree: &Tree) -> Result<()> {
        if self.nodes.row_count() != 1 {
            return Err(XmlDbError::Inconsistent {
                reason: "load requires an empty database".into(),
            });
        }
        self.insert_subtree(self.root_id, tree)?;
        Ok(())
    }

    fn alloc_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::SeqCst)
    }

    fn child_of(&self, parent: u64, label: Label) -> Result<Option<(RowId, Vec<Datum>)>> {
        let hits = self
            .nodes
            .lookup(BY_PARENT_LABEL, &[Datum::U64(parent), Datum::str(label.as_str())])?;
        Ok(hits.into_iter().next())
    }

    fn children_of(&self, parent: u64) -> Result<Vec<(RowId, Vec<Datum>)>> {
        self.nodes.lookup(BY_PARENT, &[Datum::U64(parent)]).map_err(Into::into)
    }

    /// Resolves a qualified path to `(row id, node record)`.
    fn resolve(&self, path: &Path) -> Result<(RowId, Vec<Datum>)> {
        if path.first() != Some(self.name) {
            return Err(TreeError::WrongDatabase { expected: self.name, path: path.clone() }.into());
        }
        let mut cur = self
            .nodes
            .lookup(BY_ID, &[Datum::U64(self.root_id)])?
            .into_iter()
            .next()
            .ok_or(XmlDbError::Inconsistent { reason: "root record missing".into() })?;
        for seg in path.iter().skip(1) {
            let id = cur.1[0].as_u64().expect("id");
            cur = self
                .child_of(id, seg)?
                .ok_or_else(|| TreeError::PathNotFound { path: path.clone() })?;
        }
        Ok(cur)
    }

    /// Builds the tree under node `id`.
    fn build_tree(&self, id: u64, rec: &NodeRec) -> Result<Tree> {
        match &rec.value {
            Some(v) => Ok(Tree::Leaf(v.clone())),
            None => {
                let mut children = std::collections::BTreeMap::new();
                for (_, row) in self.children_of(id)? {
                    let child = decode_node(&row)?;
                    let sub = self.build_tree(child.id, &child)?;
                    children.insert(child.label, sub);
                }
                Ok(Tree::from_map(children))
            }
        }
    }

    fn insert_subtree(&self, parent: u64, tree: &Tree) -> Result<u64> {
        // `parent` must already exist and be interior; insert children.
        let mut count = 0;
        if let Some(children) = tree.children() {
            for (label, sub) in children {
                count += self.insert_node(parent, *label, sub)?;
            }
        }
        Ok(count)
    }

    fn insert_node(&self, parent: u64, label: Label, tree: &Tree) -> Result<u64> {
        let id = self.alloc_id();
        self.nodes.insert(&encode_node(id, parent, label, tree.as_value()))?;
        let mut count = 1;
        if let Some(children) = tree.children() {
            for (child_label, sub) in children {
                count += self.insert_node(id, *child_label, sub)?;
            }
        }
        Ok(count)
    }

    /// Deletes node `id` and its descendants, returning how many records
    /// were removed.
    fn delete_rec(&self, rid: RowId, id: u64) -> Result<u64> {
        let mut removed = 0;
        // Children first (avoid orphan records if interrupted).
        for (child_rid, row) in self.children_of(id)? {
            let child_id = row[0].as_u64().expect("id");
            removed += self.delete_rec(child_rid, child_id)?;
        }
        self.nodes.delete(rid)?;
        Ok(removed + 1)
    }

    /// Number of node records (including the root).
    pub fn node_count(&self) -> u64 {
        self.nodes.row_count()
    }

    /// Physical bytes of the node table.
    pub fn physical_bytes(&self) -> u64 {
        self.nodes.physical_bytes()
    }

    /// Flushes the node table.
    pub fn flush(&self) -> Result<()> {
        self.nodes.flush().map_err(Into::into)
    }

    /// Pastes a flattened node list (as produced by
    /// [`SourceDb::copy_node`] at `src`) to `target`, node by node —
    /// Figure 6's `pasteNode(Node X)` loop. Returns the replaced subtree
    /// if the target existed.
    pub fn paste_nodes(
        &self,
        src: &Path,
        nodes: &[CopiedNode],
        target: &Path,
    ) -> Result<Option<Tree>> {
        let tree = crate::wrapper::rebuild_subtree(src, nodes)?;
        self.paste_node(target, &tree)
    }
}

impl SourceDb for XmlDb {
    fn db_name(&self) -> Label {
        self.name
    }

    fn tree_from_db(&self) -> Result<Tree> {
        self.client.round_trip();
        let (_, row) = self
            .nodes
            .lookup(BY_ID, &[Datum::U64(self.root_id)])?
            .into_iter()
            .next()
            .ok_or(XmlDbError::Inconsistent { reason: "root record missing".into() })?;
        let rec = decode_node(&row)?;
        self.build_tree(self.root_id, &rec)
    }

    fn subtree(&self, path: &Path) -> Result<Tree> {
        self.client.round_trip();
        let (_, row) = self.resolve(path)?;
        let rec = decode_node(&row)?;
        self.build_tree(rec.id, &rec)
    }

    fn contains(&self, path: &Path) -> bool {
        self.resolve(path).is_ok()
    }

    fn round_trips(&self) -> u64 {
        self.client.count()
    }
}

impl TargetDb for XmlDb {
    fn add_node(&self, parent: &Path, label: Label, content: &InsertContent) -> Result<()> {
        self.client.round_trip();
        let (_, row) = self.resolve(parent)?;
        let rec = decode_node(&row)?;
        if rec.value.is_some() {
            return Err(TreeError::NotATree { at: parent.clone() }.into());
        }
        if self.child_of(rec.id, label)?.is_some() {
            return Err(TreeError::DuplicateEdge { at: parent.clone(), label }.into());
        }
        let tree = content.to_tree();
        self.insert_node(rec.id, label, &tree)?;
        Ok(())
    }

    fn delete_node(&self, path: &Path) -> Result<Tree> {
        let (rid, row) = self.resolve(path)?;
        let rec = decode_node(&row)?;
        if rec.id == self.root_id {
            self.client.round_trip();
            return Err(XmlDbError::Inconsistent { reason: "cannot delete the root".into() });
        }
        let subtree = self.build_tree(rec.id, &rec)?;
        // Like pasteNode, removal costs one interaction per node: the
        // server walks and unlinks every record of the subtree.
        for _ in 0..subtree.node_count() {
            self.client.round_trip();
        }
        self.delete_rec(rid, rec.id)?;
        Ok(subtree)
    }

    fn paste_node(&self, path: &Path, subtree: &Tree) -> Result<Option<Tree>> {
        // One client round trip per node written (pasteNode is per-node).
        for _ in 0..subtree.node_count() {
            self.client.round_trip();
        }
        let parent_path = path.parent().ok_or_else(|| TreeError::BadPath {
            text: path.to_string(),
            reason: "cannot paste over a database root",
        })?;
        let label = path.last().expect("checked non-empty");

        let replaced = match self.resolve(path) {
            Ok((rid, row)) => {
                let rec = decode_node(&row)?;
                let old = self.build_tree(rec.id, &rec)?;
                self.delete_rec(rid, rec.id)?;
                Some(old)
            }
            Err(XmlDbError::Tree(TreeError::PathNotFound { .. })) => None,
            Err(other) => return Err(other),
        };
        let (_, parent_row) = self.resolve(&parent_path)?;
        let parent_rec = decode_node(&parent_row)?;
        if parent_rec.value.is_some() {
            return Err(TreeError::NotATree { at: parent_path.clone() }.into());
        }
        self.insert_node(parent_rec.id, label, subtree)?;
        Ok(replaced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpdb_tree::tree;

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    fn fresh(name: &str) -> XmlDb {
        let engine = Engine::in_memory();
        XmlDb::create(name, &engine).unwrap()
    }

    #[test]
    fn load_and_read_back() {
        let db = fresh("T");
        let t = tree! {
            "c1" => { "x" => 1, "y" => 3 },
            "c5" => { "x" => 9, "y" => "seven" },
        };
        db.load(&t).unwrap();
        assert_eq!(db.tree_from_db().unwrap(), t);
        assert_eq!(db.subtree(&p("T/c1")).unwrap(), tree! { "x" => 1, "y" => 3 });
        assert_eq!(db.subtree(&p("T/c5/y")).unwrap(), Tree::leaf("seven"));
        assert_eq!(db.node_count(), t.node_count() as u64, "root record + six children");
    }

    #[test]
    fn resolve_failures_are_typed() {
        let db = fresh("T");
        db.load(&tree! { "c1" => 1 }).unwrap();
        assert!(matches!(
            db.subtree(&p("T/zz")),
            Err(XmlDbError::Tree(TreeError::PathNotFound { .. }))
        ));
        assert!(matches!(
            db.subtree(&p("S/c1")),
            Err(XmlDbError::Tree(TreeError::WrongDatabase { .. }))
        ));
        assert!(!db.contains(&p("T/c1/deep")));
        assert!(db.contains(&p("T/c1")));
    }

    #[test]
    fn add_node_inserts_and_rejects_duplicates() {
        let db = fresh("T");
        db.add_node(&p("T"), Label::new("c2"), &InsertContent::Empty).unwrap();
        db.add_node(&p("T/c2"), Label::new("y"), &InsertContent::Value(Value::int(12))).unwrap();
        assert_eq!(db.subtree(&p("T/c2")).unwrap(), tree! { "y" => 12 });
        assert!(matches!(
            db.add_node(&p("T"), Label::new("c2"), &InsertContent::Empty),
            Err(XmlDbError::Tree(TreeError::DuplicateEdge { .. }))
        ));
        // Cannot add under a leaf.
        assert!(matches!(
            db.add_node(&p("T/c2/y"), Label::new("z"), &InsertContent::Empty),
            Err(XmlDbError::Tree(TreeError::NotATree { .. }))
        ));
    }

    #[test]
    fn delete_node_removes_subtree() {
        let db = fresh("T");
        db.load(&tree! { "c5" => { "x" => 9, "y" => 7 }, "keep" => 1 }).unwrap();
        let removed = db.delete_node(&p("T/c5")).unwrap();
        assert_eq!(removed, tree! { "x" => 9, "y" => 7 });
        assert_eq!(db.tree_from_db().unwrap(), tree! { "keep" => 1 });
        assert_eq!(db.node_count(), 2, "root + keep");
        assert!(matches!(
            db.delete_node(&p("T/c5")),
            Err(XmlDbError::Tree(TreeError::PathNotFound { .. }))
        ));
    }

    #[test]
    fn paste_replaces_or_creates() {
        let db = fresh("T");
        db.load(&tree! { "c1" => { "x" => 1 } }).unwrap();
        // Fresh position.
        let replaced = db.paste_node(&p("T/c2"), &tree! { "a" => 5 }).unwrap();
        assert!(replaced.is_none());
        // Existing position.
        let replaced = db.paste_node(&p("T/c1"), &Tree::leaf(42)).unwrap();
        assert_eq!(replaced, Some(tree! { "x" => 1 }));
        assert_eq!(db.tree_from_db().unwrap(), tree! { "c1" => 42, "c2" => { "a" => 5 } });
    }

    #[test]
    fn copy_node_lists_subtree_and_paste_nodes_round_trips() {
        let src_db = fresh("S1");
        src_db.load(&tree! { "a2" => { "x" => 3, "sub" => { "d" => "deep" } } }).unwrap();
        let nodes = src_db.copy_node(&p("S1/a2")).unwrap();
        assert_eq!(nodes.len(), 4);
        assert_eq!(nodes[0].path, p("S1/a2"));
        assert_eq!(nodes[0].value, None);

        let dst = fresh("T");
        dst.add_node(&p("T"), Label::new("c2"), &InsertContent::Empty).unwrap();
        dst.paste_nodes(&p("S1/a2"), &nodes, &p("T/c2")).unwrap();
        assert_eq!(
            dst.subtree(&p("T/c2")).unwrap(),
            tree! { "x" => 3, "sub" => { "d" => "deep" } }
        );
        // Leaf copy: list of size 1.
        let leaf_nodes = src_db.copy_node(&p("S1/a2/x")).unwrap();
        assert_eq!(leaf_nodes.len(), 1);
        dst.paste_nodes(&p("S1/a2/x"), &leaf_nodes, &p("T/leaf")).unwrap();
        assert_eq!(dst.subtree(&p("T/leaf")).unwrap(), Tree::leaf(3));
    }

    #[test]
    fn round_trips_count_per_node_for_paste() {
        let db = fresh("T");
        db.load(&tree! {}).unwrap();
        let before = db.round_trips();
        db.paste_node(&p("T/c"), &tree! { "x" => 1, "y" => 2, "z" => 3 }).unwrap();
        assert_eq!(db.round_trips() - before, 4, "size-4 subtree = 4 interactions");
        let before = db.round_trips();
        db.add_node(&p("T"), Label::new("solo"), &InsertContent::Empty).unwrap();
        assert_eq!(db.round_trips() - before, 1);
    }

    #[test]
    fn persistence_across_reopen() {
        let dir = std::env::temp_dir().join(format!("cpdb-xmldb-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let t = tree! { "c1" => { "x" => 1 }, "c2" => "v" };
        {
            let engine = Engine::on_disk(&dir).unwrap();
            let db = XmlDb::create("T", &engine).unwrap();
            db.load(&t).unwrap();
            db.flush().unwrap();
        }
        {
            let engine = Engine::on_disk(&dir).unwrap();
            let db = XmlDb::open("T", &engine).unwrap();
            assert_eq!(db.tree_from_db().unwrap(), t);
            // New ids must not collide with loaded ones.
            db.add_node(&p("T"), Label::new("c3"), &InsertContent::Empty).unwrap();
            assert_eq!(db.tree_from_db().unwrap().node_count(), t.node_count() + 1);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
