//! Spans: named, timed sections with parent/child attribution.
//!
//! Entering a span pushes it on a per-thread stack and starts a
//! monotonic clock; dropping the guard pops the stack and folds the
//! elapsed wall time into an aggregate keyed by `(name, parent,
//! index)`, where the parent is whatever span was on top of the stack
//! at entry. A query's wall time therefore decomposes: the aggregate
//! for `("get_mod.seed", parent = "get_mod")` is exactly the seed
//! share of every `get_mod` call, and
//! [`crate::StatsSnapshot::span_child_coverage`] reports how much of a
//! parent its named children account for.
//!
//! Work handed to another thread keeps its attribution by carrying the
//! parent explicitly: capture [`current_span`] on the submitting
//! thread and open the worker's span with [`Registry::span_under`].
//! Children that run in parallel can sum to *more* than their parent's
//! wall time — that is a feature (it is the parallel speedup), not a
//! bookkeeping error.
//!
//! Span close takes the registry's span mutex briefly; spans are meant
//! for operation-granularity sections (a probe, a shard job, an fsync
//! window), not per-record hot loops — those get counters and
//! histograms, whose record path is lock-free.

use crate::registry::Registry;
use std::cell::RefCell;
use std::sync::atomic::Ordering;
use std::time::Instant;

/// Aggregation key of one span edge: the span's name and index plus
/// the parent it was entered under (`""` for root spans).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub(crate) struct SpanKey {
    pub(crate) name: &'static str,
    pub(crate) parent: &'static str,
    pub(crate) index: Option<u32>,
}

/// Accumulated wall time of one span edge.
#[derive(Clone, Copy, Default, Debug)]
pub(crate) struct SpanAgg {
    pub(crate) count: u64,
    pub(crate) total_ns: u64,
}

thread_local! {
    /// The enclosing-span stack of this thread: `(name, index)` of
    /// every active span, outermost first.
    static STACK: RefCell<Vec<(&'static str, Option<u32>)>> = const { RefCell::new(Vec::new()) };
}

/// The name and index of the innermost active span on this thread, if
/// any — capture it before handing work to another thread and pass it
/// to [`Registry::span_under`] there.
pub fn current_span() -> Option<(&'static str, Option<u32>)> {
    STACK.with(|s| s.borrow().last().copied())
}

/// An active span. Dropping it records the elapsed time; hold it for
/// exactly the section it names.
#[must_use = "a span measures the scope of its guard — bind it with `let _span = …`"]
pub struct SpanGuard<'a> {
    /// `None` for disabled spans (recording was off at entry).
    active: Option<ActiveSpan<'a>>,
}

struct ActiveSpan<'a> {
    registry: &'a Registry,
    name: &'static str,
    parent: &'static str,
    index: Option<u32>,
    start: Instant,
}

impl Registry {
    /// Enters span `name` under the thread's current span (root if
    /// there is none).
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        let parent = current_span().map(|(n, _)| n).unwrap_or("");
        self.enter(name, parent, None)
    }

    /// Enters span `name` at `index` (e.g. the shard number) under the
    /// thread's current span.
    pub fn span_idx(&self, name: &'static str, index: u32) -> SpanGuard<'_> {
        let parent = current_span().map(|(n, _)| n).unwrap_or("");
        self.enter(name, parent, Some(index))
    }

    /// Enters span `name` under an explicit `parent` — the cross-thread
    /// form: the submitting thread captures [`current_span`] and the
    /// worker opens its span under it, so executor jobs attribute to
    /// the probe that scattered them.
    pub fn span_under(&self, name: &'static str, parent: &'static str) -> SpanGuard<'_> {
        self.enter(name, parent, None)
    }

    /// [`Registry::span_under`] with an index dimension.
    pub fn span_under_idx(
        &self,
        name: &'static str,
        parent: &'static str,
        index: u32,
    ) -> SpanGuard<'_> {
        self.enter(name, parent, Some(index))
    }

    fn enter(&self, name: &'static str, parent: &'static str, index: Option<u32>) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard { active: None };
        }
        STACK.with(|s| s.borrow_mut().push((name, index)));
        SpanGuard {
            active: Some(ActiveSpan { registry: self, name, parent, index, start: Instant::now() }),
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(span) = self.active.take() else { return };
        let elapsed = span.start.elapsed();
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Pop this span. Guards drop in LIFO order in safe code, so
            // this is the top — but a mem::forget'd inner guard must
            // not corrupt the outer ones, so search from the top.
            if let Some(pos) = stack.iter().rposition(|&(n, i)| n == span.name && i == span.index) {
                stack.truncate(pos);
            }
        });
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        {
            let key = SpanKey { name: span.name, parent: span.parent, index: span.index };
            let mut spans = span.registry.spans.lock();
            let agg = spans.entry(key).or_default();
            agg.count += 1;
            agg.total_ns = agg.total_ns.saturating_add(ns);
        }
        let threshold = span.registry.slow_threshold_ns.load(Ordering::Relaxed);
        if threshold != 0 && ns >= threshold {
            span.registry.slow.lock().push(span.name, span.parent, span.index, elapsed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_attributes_children_to_their_parent() {
        let reg = Registry::new();
        {
            let _outer = reg.span("test.outer");
            assert_eq!(current_span(), Some(("test.outer", None)));
            {
                let _inner = reg.span("test.inner");
                assert_eq!(current_span(), Some(("test.inner", None)));
            }
            let _inner2 = reg.span_idx("test.inner", 3);
        }
        assert_eq!(current_span(), None);
        let snap = reg.snapshot();
        let find = |name: &str, idx: Option<u32>| {
            snap.spans.iter().find(|s| s.name == name && s.index == idx).expect("span recorded")
        };
        assert_eq!(find("test.outer", None).parent, "");
        assert_eq!(find("test.inner", None).parent, "test.outer");
        assert_eq!(find("test.inner", Some(3)).parent, "test.outer");
        // The children's time is contained in the parent's.
        let outer = find("test.outer", None).total_ns;
        let inner: u64 =
            snap.spans.iter().filter(|s| s.parent == "test.outer").map(|s| s.total_ns).sum();
        assert!(outer >= inner, "sequential children cannot exceed their parent");
    }

    #[test]
    fn explicit_parent_carries_attribution_across_threads() {
        let reg = std::sync::Arc::new(Registry::new());
        let parent_name = {
            let _probe = reg.span("test.probe");
            let (name, _) = current_span().expect("probe is active");
            let workers: Vec<_> = (0..4)
                .map(|i| {
                    let reg = std::sync::Arc::clone(&reg);
                    std::thread::spawn(move || {
                        // The worker thread has no local stack context…
                        assert_eq!(current_span(), None);
                        let _job = reg.span_under_idx("test.job", name, i);
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    })
                })
                .collect();
            for w in workers {
                w.join().unwrap();
            }
            name
        };
        let snap = reg.snapshot();
        let jobs: Vec<_> = snap.spans.iter().filter(|s| s.name == "test.job").collect();
        assert_eq!(jobs.len(), 4, "one aggregate per worker index");
        // …yet every job attributes to the probe that scattered it.
        assert!(jobs.iter().all(|s| s.parent == parent_name));
        assert!(jobs.iter().all(|s| s.count == 1 && s.total_ns > 0));
    }

    #[test]
    fn disabled_spans_cost_nothing_and_record_nothing() {
        let reg = Registry::new();
        reg.set_enabled(false);
        {
            let _s = reg.span("test.disabled");
            assert_eq!(current_span(), None, "disabled spans do not enter the stack");
        }
        reg.set_enabled(true);
        assert!(reg.snapshot().spans.is_empty());
    }
}
