//! The slow-op log: a bounded ring buffer of spans that exceeded the
//! configured threshold.
//!
//! Off by default (threshold unset), so benches pay nothing; turned on
//! with [`crate::Registry::set_slow_threshold`], every span at least
//! that long is appended, evicting the oldest entry once the ring is
//! full. The sequence number is monotonic across evictions, so readers
//! can tell "the last 128 slow ops" from "all slow ops".

use std::time::Duration;

/// One logged slow operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlowOp {
    /// Monotonic sequence number (counts every slow op ever logged,
    /// including evicted ones).
    pub seq: u64,
    /// Span name.
    pub name: &'static str,
    /// Parent span name (`""` for root spans).
    pub parent: &'static str,
    /// Index dimension, if the span carried one.
    pub index: Option<u32>,
    /// Measured wall time.
    pub elapsed: Duration,
}

/// Fixed-capacity ring of [`SlowOp`]s.
#[derive(Debug)]
pub(crate) struct SlowLog {
    cap: usize,
    next_seq: u64,
    ops: std::collections::VecDeque<SlowOp>,
}

impl SlowLog {
    pub(crate) fn new(cap: usize) -> SlowLog {
        SlowLog { cap: cap.max(1), next_seq: 0, ops: std::collections::VecDeque::new() }
    }

    pub(crate) fn push(
        &mut self,
        name: &'static str,
        parent: &'static str,
        index: Option<u32>,
        elapsed: Duration,
    ) {
        if self.ops.len() == self.cap {
            self.ops.pop_front();
        }
        self.ops.push_back(SlowOp { seq: self.next_seq, name, parent, index, elapsed });
        self.next_seq += 1;
    }

    pub(crate) fn clear(&mut self) {
        self.ops.clear();
    }

    pub(crate) fn snapshot(&self) -> Vec<SlowOp> {
        self.ops.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_keeps_sequence() {
        let mut log = SlowLog::new(3);
        for i in 0..5u64 {
            log.push("op", "", None, Duration::from_millis(i));
        }
        let ops = log.snapshot();
        assert_eq!(ops.len(), 3);
        assert_eq!(ops[0].seq, 2, "the two oldest entries were evicted");
        assert_eq!(ops[2].seq, 4);
        assert_eq!(ops[2].elapsed, Duration::from_millis(4));
    }

    #[test]
    fn threshold_gates_the_log_end_to_end() {
        let reg = crate::Registry::new();
        // Off by default: nothing is logged.
        {
            let _s = reg.span("test.slow_off");
        }
        assert!(reg.snapshot().slow_ops.is_empty());
        // On with a zero-duration threshold: every span logs.
        reg.set_slow_threshold(Some(Duration::ZERO));
        {
            let _s = reg.span_idx("test.slow_on", 7);
        }
        let ops = reg.snapshot().slow_ops;
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].name, "test.slow_on");
        assert_eq!(ops[0].index, Some(7));
        // And off again.
        reg.set_slow_threshold(None);
        {
            let _s = reg.span("test.slow_off_again");
        }
        assert_eq!(reg.snapshot().slow_ops.len(), 1);
    }
}
