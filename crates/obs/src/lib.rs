//! # cpdb-obs — first-party tracing and metrics
//!
//! The observability substrate of the CPDB workspace: a dependency-free
//! metrics registry plus a span API, wired through every layer so that
//! questions the `Meter` cost model cannot answer — *where* did the
//! time go, *which shard* is hot, what does the fsync-coalescing
//! window look like under load — have first-party answers.
//!
//! * [`Registry`] — named [`Counter`]s, [`Gauge`]s, and fixed-boundary
//!   log₂-bucket [`Histogram`]s. The record path is lock-free (relaxed
//!   atomics); reads are snapshot-on-read via
//!   [`Registry::snapshot`].
//! * Spans — `span!("get_mod.seed")` times a section with monotonic
//!   clocks, per-thread span stacks, and parent/child attribution;
//!   [`StatsSnapshot::span_child_coverage`] decomposes a probe's wall
//!   time into its named phases, across threads via
//!   [`Registry::span_under`].
//! * [`MetricSource`] — the bridge for externally owned counters
//!   (`cpdb-storage`'s `Meter`): read at snapshot time, never
//!   mirrored, so nothing is double-counted.
//! * [`StatsSnapshot`] — rendered as human-readable text and as
//!   hand-rolled JSON (the same restricted style as the bench suite's
//!   `BENCH_<name>.json`), plus a ring-buffer slow-op log
//!   ([`SlowOp`], threshold-configurable, off by default).
//!
//! Most code uses the process-wide [`global`] registry; tests build
//! private [`Registry`] instances. Instrument names are static string
//! literals registered at exactly one call site each (`cpdb-lint`
//! enforces this), so the instrument namespace stays greppable.
//!
//! ```
//! use std::time::Duration;
//!
//! let reg = cpdb_obs::Registry::new();
//! let hits = reg.register_counter("docs.hits");
//! let lat = reg.register_histogram("docs.lat_ns");
//! {
//!     let _probe = reg.span("docs.probe");
//!     hits.inc();
//!     lat.record_duration(Duration::from_micros(7));
//! }
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("docs.hits"), Some(1));
//! assert_eq!(snap.histogram("docs.lat_ns").unwrap().count, 1);
//! assert!(snap.span_total_ns("docs.probe") > 0);
//! println!("{}", snap.to_text());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod hist;
pub(crate) mod registry;
mod slowlog;
mod snapshot;
mod span;

pub use hist::{bucket_ceil, bucket_floor, bucket_of, HistogramStat, BUCKETS};
pub use registry::{Counter, Gauge, Histogram, MetricSource, Registry, SourceVisitor};
pub use slowlog::SlowOp;
pub use snapshot::{SpanStat, StatsSnapshot};
pub use span::{current_span, SpanGuard};

use std::sync::OnceLock;

/// The process-wide registry every instrumentation site records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Shorthand for [`Registry::snapshot`] on the [`global`] registry.
pub fn snapshot() -> StatsSnapshot {
    global().snapshot()
}

/// Enters a span on the [`global`] registry:
/// `span!("by_loc_prefix")`, or `span!("by_loc_prefix", shard = 3)`
/// with a per-shard index dimension. Bind the guard — the span covers
/// its scope.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::global().span($name)
    };
    ($name:literal, shard = $idx:expr) => {
        $crate::global().span_idx($name, $idx as u32)
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn global_registry_and_span_macro_work_end_to_end() {
        let c = crate::global().register_counter("test.global.hits");
        let before = c.get();
        {
            let _s = span!("test.global.span");
            c.inc();
        }
        {
            let _s = span!("test.global.span", shard = 1u32);
        }
        let snap = crate::snapshot();
        assert!(snap.counter("test.global.hits").unwrap() > before);
        assert!(snap.span_total_ns("test.global.span") > 0);
    }
}
