//! Stats exposition: [`StatsSnapshot`] and its text / JSON renderings.
//!
//! A snapshot is a point-in-time copy of every instrument: counters
//! (including [`crate::MetricSource`] values read at snapshot time),
//! gauges, histogram summaries, span aggregates, and the slow-op log.
//! The JSON is hand-rolled in the same restricted style as the bench
//! suite's `BENCH_<name>.json` (this tree builds offline, without
//! serde) but is plain standard JSON.

use crate::hist::HistogramStat;
use crate::slowlog::SlowOp;

/// Aggregated wall time of one span edge, keyed by name, parent, and
/// optional index.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanStat {
    /// Span name.
    pub name: &'static str,
    /// Parent span name (`""` for root spans).
    pub parent: &'static str,
    /// Index dimension, if any.
    pub index: Option<u32>,
    /// Number of completed spans.
    pub count: u64,
    /// Total wall nanoseconds across them.
    pub total_ns: u64,
}

impl SpanStat {
    /// Rendered name including the index dimension.
    pub fn rendered(&self) -> String {
        crate::registry::render(self.name, self.index)
    }
}

/// A point-in-time copy of every instrument in a [`crate::Registry`].
#[derive(Clone, Debug, Default)]
pub struct StatsSnapshot {
    /// Counter values by rendered name — registry counters plus every
    /// registered source's values (`<source>.<key>`), read at snapshot
    /// time.
    pub counters: Vec<(String, u64)>,
    /// Gauge levels by rendered name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram summaries.
    pub histograms: Vec<HistogramStat>,
    /// Span aggregates.
    pub spans: Vec<SpanStat>,
    /// The slow-op ring buffer, oldest first.
    pub slow_ops: Vec<SlowOp>,
}

impl StatsSnapshot {
    /// The counter named `name` (rendered form, e.g.
    /// `"wal.sync.leaders"` or `"sharded.reads.round_trips"`).
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The counter `name` at `index` (`name{shard=index}`).
    pub fn counter_idx(&self, name: &str, index: u32) -> Option<u64> {
        self.counter(&crate::registry::render(name, Some(index)))
    }

    /// The gauge named `name`.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The histogram named `name` (rendered form).
    pub fn histogram(&self, name: &str) -> Option<&HistogramStat> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// The histogram `name` at `index`.
    pub fn histogram_idx(&self, name: &str, index: u32) -> Option<&HistogramStat> {
        self.histogram(&crate::registry::render(name, Some(index)))
    }

    /// Total wall nanoseconds of every span named `name`, summed over
    /// parents and indexes.
    pub fn span_total_ns(&self, name: &str) -> u64 {
        self.spans.iter().filter(|s| s.name == name).map(|s| s.total_ns).sum()
    }

    /// How much of span `parent`'s wall time its named children account
    /// for: `Σ total(child with parent == parent) / total(parent)`.
    /// Parallel children can push this above `1.0`. `None` if `parent`
    /// never ran.
    pub fn span_child_coverage(&self, parent: &str) -> Option<f64> {
        let total = self.span_total_ns(parent);
        if total == 0 {
            return None;
        }
        let children: u64 =
            self.spans.iter().filter(|s| s.parent == parent).map(|s| s.total_ns).sum();
        Some(children as f64 / total as f64)
    }

    /// Human-readable rendering, section per instrument kind.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("== counters ==\n");
        for (name, v) in &self.counters {
            out.push_str(&format!("  {name:<44} {v}\n"));
        }
        out.push_str("== gauges ==\n");
        for (name, v) in &self.gauges {
            out.push_str(&format!("  {name:<44} {v}\n"));
        }
        out.push_str("== histograms (ns unless named otherwise) ==\n");
        for h in &self.histograms {
            out.push_str(&format!(
                "  {:<44} count={} p50={} p90={} max={} mean={:.0}\n",
                h.name,
                h.count,
                h.p50().unwrap_or(0),
                h.p90().unwrap_or(0),
                h.max,
                h.mean().unwrap_or(0.0),
            ));
        }
        out.push_str("== spans ==\n");
        for s in &self.spans {
            let parent = if s.parent.is_empty() { "(root)" } else { s.parent };
            out.push_str(&format!(
                "  {:<36} under {:<20} count={} total={:.3}ms\n",
                s.rendered(),
                parent,
                s.count,
                s.total_ns as f64 / 1e6,
            ));
        }
        if !self.slow_ops.is_empty() {
            out.push_str("== slow ops ==\n");
            for op in &self.slow_ops {
                out.push_str(&format!(
                    "  #{:<6} {:<36} {:?}\n",
                    op.seq,
                    crate::registry::render(op.name, op.index),
                    op.elapsed,
                ));
            }
        }
        out
    }

    /// The JSON document (standard JSON, hand-rolled).
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let counters: Vec<String> =
            self.counters.iter().map(|(k, v)| format!("    \"{}\": {v}", esc(k))).collect();
        let gauges: Vec<String> =
            self.gauges.iter().map(|(k, v)| format!("    \"{}\": {v}", esc(k))).collect();
        let hists: Vec<String> = self
            .histograms
            .iter()
            .map(|h| {
                format!(
                    "    \"{}\": {{ \"count\": {}, \"sum\": {}, \"max\": {}, \"p50\": {}, \"p90\": {} }}",
                    esc(&h.name),
                    h.count,
                    h.sum,
                    h.max,
                    h.p50().unwrap_or(0),
                    h.p90().unwrap_or(0),
                )
            })
            .collect();
        let spans: Vec<String> = self
            .spans
            .iter()
            .map(|s| {
                format!(
                    "    \"{}\": {{ \"parent\": \"{}\", \"count\": {}, \"total_ns\": {} }}",
                    esc(&s.rendered()),
                    esc(s.parent),
                    s.count,
                    s.total_ns,
                )
            })
            .collect();
        let slow: Vec<String> = self
            .slow_ops
            .iter()
            .map(|op| {
                format!(
                    "    {{ \"seq\": {}, \"name\": \"{}\", \"elapsed_ns\": {} }}",
                    op.seq,
                    esc(&crate::registry::render(op.name, op.index)),
                    u64::try_from(op.elapsed.as_nanos()).unwrap_or(u64::MAX),
                )
            })
            .collect();
        format!(
            "{{\n  \"counters\": {{\n{}\n  }},\n  \"gauges\": {{\n{}\n  }},\n  \
             \"histograms\": {{\n{}\n  }},\n  \"spans\": {{\n{}\n  }},\n  \
             \"slow_ops\": [\n{}\n  ]\n}}\n",
            counters.join(",\n"),
            gauges.join(",\n"),
            hists.join(",\n"),
            spans.join(",\n"),
            slow.join(",\n"),
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::Registry;

    #[test]
    fn snapshot_reads_instruments_and_sources_without_double_counting() {
        struct FixedSource;
        impl crate::MetricSource for FixedSource {
            fn collect(&self, out: &mut crate::SourceVisitor) {
                out.counter("round_trips", 42);
            }
        }
        let reg = Registry::new();
        let c = reg.register_counter_idx("test.statements", 2);
        c.add(5);
        let g = reg.register_gauge("test.depth");
        g.set(9);
        g.set_max(4); // below: no effect
        let h = reg.register_histogram("test.lat_ns");
        h.record(1024);
        reg.register_source("test.meter", std::sync::Arc::new(FixedSource));

        let snap = reg.snapshot();
        assert_eq!(snap.counter_idx("test.statements", 2), Some(5));
        assert_eq!(snap.counter("test.meter.round_trips"), Some(42));
        assert_eq!(snap.gauge("test.depth"), Some(9));
        let hist = snap.histogram("test.lat_ns").expect("histogram present");
        assert_eq!(hist.count, 1);
        assert_eq!(hist.max, 1024);
        // Snapshot twice: source values are read, not accumulated.
        let again = reg.snapshot();
        assert_eq!(again.counter("test.meter.round_trips"), Some(42));
    }

    #[test]
    fn registration_is_idempotent_per_key() {
        let reg = Registry::new();
        let a = reg.register_counter("test.once");
        let b = reg.register_counter("test.once");
        a.inc();
        b.inc();
        assert_eq!(reg.snapshot().counter("test.once"), Some(2), "one cell behind both handles");
        let i0 = reg.register_counter_idx("test.once", 0);
        i0.inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("test.once"), Some(2), "indexed key is distinct");
        assert_eq!(snap.counter_idx("test.once", 0), Some(1));
    }

    #[test]
    fn reset_zeroes_values_but_keeps_handles_live() {
        let reg = Registry::new();
        let c = reg.register_counter("test.reset");
        let h = reg.register_histogram("test.reset_ns");
        c.inc();
        h.record(7);
        {
            let _s = reg.span("test.reset_span");
        }
        reg.reset();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("test.reset"), Some(0));
        assert_eq!(snap.histogram("test.reset_ns").unwrap().count, 0);
        assert!(snap.spans.is_empty());
        c.inc();
        assert_eq!(reg.snapshot().counter("test.reset"), Some(1), "handle survives reset");
    }

    #[test]
    fn text_and_json_render_every_section() {
        let reg = Registry::new();
        reg.register_counter_idx("test.shard.statements", 0).add(3);
        reg.register_gauge("test.queue").set(2);
        reg.register_histogram("test.ns").record(100);
        reg.set_slow_threshold(Some(std::time::Duration::ZERO));
        {
            let _outer = reg.span("test.render");
            let _inner = reg.span("test.render.child");
        }
        let snap = reg.snapshot();
        let text = snap.to_text();
        assert!(text.contains("test.shard.statements{shard=0}"), "{text}");
        assert!(text.contains("== slow ops =="), "{text}");
        let json = snap.to_json();
        assert!(json.contains("\"test.shard.statements{shard=0}\": 3"), "{json}");
        assert!(json.contains("\"test.queue\": 2"), "{json}");
        assert!(json.contains("\"test.ns\": { \"count\": 1"), "{json}");
        assert!(json.contains("\"parent\": \"test.render\""), "{json}");
        assert!(json.contains("\"slow_ops\": ["), "{json}");
    }

    #[test]
    fn child_coverage_decomposes_a_parent() {
        let reg = Registry::new();
        {
            let _p = reg.span("test.cov");
            {
                let _a = reg.span("test.cov.a");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            let _b = reg.span("test.cov.b");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = reg.snapshot();
        let cov = snap.span_child_coverage("test.cov").expect("parent ran");
        assert!(cov > 0.5 && cov <= 1.0, "children dominate the parent: {cov}");
        assert!(snap.span_child_coverage("test.never").is_none());
    }
}
