//! Fixed-boundary log₂-bucket histograms.
//!
//! The record path is lock-free: one relaxed `fetch_add` into the
//! bucket owning the value, one into the running sum, and a
//! `fetch_max` for the exact maximum. Bucket boundaries are powers of
//! two — bucket `0` holds only the value `0`, bucket `i > 0` holds
//! `[2^(i-1), 2^i)`, and the top bucket saturates (every value at or
//! above its floor lands there). Quantiles read from a snapshot are
//! therefore upper bounds with at most 2x relative error, which is
//! exactly the precision a latency heat map needs and cheap enough to
//! leave on in production.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets. Bucket 0 is the zero bucket; bucket
/// `BUCKETS - 1` saturates. With nanosecond values the top bucket's
/// floor, `2^(BUCKETS - 2)` ns, is ≈ 19.5 hours — far beyond any
/// operation this codebase times.
pub const BUCKETS: usize = 48;

/// The bucket index owning `value`: `0` for `0`, else the value's bit
/// length, saturated at the top bucket. Powers of two are exact bucket
/// floors: `bucket_of(2^k) == k + 1` and `2^k` is the smallest value
/// of that bucket.
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// The smallest value bucket `i` holds (`0` for the zero bucket).
pub fn bucket_floor(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// The largest value bucket `i` holds (`u64::MAX` for the saturated
/// top bucket).
pub fn bucket_ceil(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Shared histogram storage behind [`crate::Histogram`] handles.
#[derive(Debug)]
pub(crate) struct HistCell {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistCell {
    pub(crate) fn new() -> HistCell {
        HistCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Lock-free record: three relaxed atomic ops.
    pub(crate) fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    pub(crate) fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }

    /// Snapshot-on-read: copies the bucket counts once; every derived
    /// statistic comes from that copy, so a concurrent recorder cannot
    /// tear a quantile against its own count.
    pub(crate) fn snapshot(&self, name: String) -> HistogramStat {
        let buckets: [u64; BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        HistogramStat {
            name,
            count: buckets.iter().sum(),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// An immutable snapshot of one histogram, carried by
/// [`crate::StatsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramStat {
    /// Rendered instrument name (index dimension included).
    pub name: String,
    /// Total number of recorded values.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Exact maximum recorded value (not a bucket bound).
    pub max: u64,
    /// Per-bucket counts; see [`bucket_floor`] / [`bucket_ceil`].
    pub buckets: [u64; BUCKETS],
}

impl HistogramStat {
    /// The `q`-quantile (`0.0 ..= 1.0`) as an upper bound: the ceiling
    /// of the bucket holding the `⌈q·count⌉`-th smallest value, capped
    /// at the exact observed maximum. `None` for an empty histogram.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_ceil(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Median upper bound (`None` when empty).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// 90th-percentile upper bound (`None` when empty).
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.9)
    }

    /// Mean of the recorded values (exact: `sum / count`).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn powers_of_two_are_exact_bucket_floors() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        for k in 0..BUCKETS - 2 {
            let v = 1u64 << k;
            // 2^k opens bucket k+1…
            assert_eq!(bucket_of(v), k + 1, "2^{k}");
            assert_eq!(bucket_floor(k + 1), v, "floor of bucket {}", k + 1);
            // …and 2^k - 1 still belongs to the bucket below.
            assert_eq!(bucket_of(v - 1), bucket_of(v.saturating_sub(1)));
            assert!(bucket_of(v - 1) < k + 1 || v == 1, "2^{k} - 1 stays below");
            assert_eq!(bucket_ceil(k + 1), 2 * v - 1);
        }
    }

    #[test]
    fn top_bucket_saturates() {
        let top = BUCKETS - 1;
        assert_eq!(bucket_of(bucket_floor(top)), top);
        assert_eq!(bucket_of(u64::MAX), top);
        assert_eq!(bucket_ceil(top), u64::MAX);
        let h = HistCell::new();
        h.record(u64::MAX);
        h.record(bucket_floor(top));
        let s = h.snapshot("t".into());
        assert_eq!(s.buckets[top], 2);
        assert_eq!(s.max, u64::MAX);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds_capped_at_max() {
        let h = HistCell::new();
        for v in [1u64, 2, 3, 100] {
            h.record(v);
        }
        let s = h.snapshot("t".into());
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 106);
        assert_eq!(s.max, 100);
        // rank 2 of 4 at q=0.5 → the bucket of value 2 (ceil 3).
        assert_eq!(s.p50(), Some(3));
        // rank 4 → bucket of 100 is [64,127], capped at the exact max.
        assert_eq!(s.p90(), Some(100));
        assert_eq!(s.quantile(1.0), Some(100));
        assert!(HistCell::new().snapshot("e".into()).p50().is_none());
    }

    #[test]
    fn concurrent_recording_sums_exactly() {
        use std::sync::Arc;
        let h = Arc::new(HistCell::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        h.record(t * per_thread + i);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        let s = h.snapshot("t".into());
        let n = threads * per_thread;
        assert_eq!(s.count, n);
        assert_eq!(s.sum, n * (n - 1) / 2, "every recorded value is summed exactly once");
        assert_eq!(s.max, n - 1);
    }
}
