//! The metrics registry: named instruments with a lock-free record
//! path and snapshot-on-read exposition.
//!
//! Instruments are identified by a static name plus an optional
//! integer index (the per-shard dimension, rendered `name{shard=i}`).
//! Registration is idempotent — registering the same (name, index)
//! twice returns a handle to the same cell, so construction sites can
//! run per store instance without double bookkeeping — but `cpdb-lint`
//! additionally requires each *name literal* to appear at exactly one
//! registration call site, which keeps the instrument namespace
//! greppable and collision-free.
//!
//! The registry mutex guards only the name → cell map (registration
//! and snapshots); recording through a handle is pure atomics and
//! never takes it. No code path ever acquires another crate's lock
//! while holding a registry lock, so obs internals cannot participate
//! in a lock-order cycle with storage locks.

use crate::hist::{HistCell, HistogramStat};
use crate::slowlog::{SlowLog, SlowOp};
use crate::span::{SpanAgg, SpanKey};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Instrument identity: static name + optional index dimension.
pub(crate) type Key = (&'static str, Option<u32>);

/// Renders an instrument key the way snapshots and the JSON dump name
/// it: `name` or `name{shard=i}`.
pub(crate) fn render(name: &str, index: Option<u32>) -> String {
    match index {
        None => name.to_owned(),
        Some(i) => format!("{name}{{shard={i}}}"),
    }
}

/// A monotonically increasing counter handle. Cloning shares the cell.
#[derive(Clone, Debug)]
pub struct Counter {
    cell: Arc<AtomicU64>,
    enabled: Arc<AtomicBool>,
}

impl Counter {
    /// Adds one. Lock-free; a no-op while the registry's recording is
    /// [disabled](Registry::set_enabled).
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`. Lock-free; a no-op while recording is disabled.
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A gauge handle: a settable signed level. Cloning shares the cell.
#[derive(Clone, Debug)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
    enabled: Arc<AtomicBool>,
}

impl Gauge {
    /// Sets the level. Lock-free; a no-op while recording is disabled.
    pub fn set(&self, v: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `n` (use a negative `n` to decrement).
    pub fn add(&self, n: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Ratchets the gauge up to `v` if it is below (high-water marks,
    /// e.g. peak resident rows).
    pub fn set_max(&self, v: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A histogram handle over fixed log₂ buckets. Cloning shares the cell.
#[derive(Clone, Debug)]
pub struct Histogram {
    cell: Arc<HistCell>,
    enabled: Arc<AtomicBool>,
}

impl Histogram {
    /// Records one value. Lock-free; a no-op while recording is
    /// disabled.
    pub fn record(&self, value: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.cell.record(value);
        }
    }

    /// Records a duration as nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }
}

/// A read-at-snapshot-time metric provider: the bridge that folds
/// externally owned counters (e.g. `cpdb-storage`'s `Meter`) into a
/// [`crate::StatsSnapshot`] without double-counting — the registry
/// *reads* the source when a snapshot is taken instead of mirroring
/// every increment.
pub trait MetricSource: Send + Sync {
    /// Pushes the source's current counter values into `out`.
    fn collect(&self, out: &mut SourceVisitor);
}

/// Collects `(key, value)` pairs from one [`MetricSource`], prefixing
/// keys with the source's registered name.
pub struct SourceVisitor {
    prefix: &'static str,
    out: Vec<(String, u64)>,
}

impl SourceVisitor {
    /// Reports one counter as `<source name>.<key>`.
    pub fn counter(&mut self, key: &str, value: u64) {
        self.out.push((format!("{}.{key}", self.prefix), value));
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<Key, Arc<AtomicU64>>,
    gauges: BTreeMap<Key, Arc<AtomicI64>>,
    hists: BTreeMap<Key, Arc<HistCell>>,
    sources: BTreeMap<&'static str, Arc<dyn MetricSource>>,
}

/// A metrics registry: instrument registration, span aggregation, the
/// slow-op log, and snapshots. Most code uses the process-wide
/// [`crate::global`] registry; tests may build private ones.
pub struct Registry {
    inner: Mutex<Inner>,
    /// Shared with every handle this registry hands out: the record
    /// kill-switch overhead experiments flip.
    enabled: Arc<AtomicBool>,
    pub(crate) spans: Mutex<BTreeMap<SpanKey, SpanAgg>>,
    pub(crate) slow: Mutex<SlowLog>,
    pub(crate) slow_threshold_ns: AtomicU64,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl Registry {
    /// Creates an empty registry with recording on and the slow-op log
    /// off.
    pub fn new() -> Registry {
        Registry {
            inner: Mutex::labeled("obs.registry", Inner::default()),
            enabled: Arc::new(AtomicBool::new(true)),
            spans: Mutex::labeled("obs.spans", BTreeMap::new()),
            slow: Mutex::labeled("obs.slowlog", SlowLog::new(128)),
            slow_threshold_ns: AtomicU64::new(0),
        }
    }

    /// Turns recording on or off for every instrument and span of this
    /// registry. Off, the record path is a single relaxed load — the
    /// baseline side of the instrumentation-overhead experiment.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is currently on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Registers (or retrieves) the counter `name`.
    pub fn register_counter(&self, name: &'static str) -> Counter {
        self.counter_key((name, None))
    }

    /// Registers (or retrieves) the counter `name` at `index` (the
    /// per-shard dimension).
    pub fn register_counter_idx(&self, name: &'static str, index: u32) -> Counter {
        self.counter_key((name, Some(index)))
    }

    fn counter_key(&self, key: Key) -> Counter {
        Counter {
            cell: Arc::clone(self.inner.lock().counters.entry(key).or_default()),
            enabled: Arc::clone(&self.enabled),
        }
    }

    /// Registers (or retrieves) the gauge `name`.
    pub fn register_gauge(&self, name: &'static str) -> Gauge {
        self.gauge_key((name, None))
    }

    /// Registers (or retrieves) the gauge `name` at `index`.
    pub fn register_gauge_idx(&self, name: &'static str, index: u32) -> Gauge {
        self.gauge_key((name, Some(index)))
    }

    fn gauge_key(&self, key: Key) -> Gauge {
        Gauge {
            cell: Arc::clone(self.inner.lock().gauges.entry(key).or_default()),
            enabled: Arc::clone(&self.enabled),
        }
    }

    /// Registers (or retrieves) the histogram `name`.
    pub fn register_histogram(&self, name: &'static str) -> Histogram {
        self.hist_key((name, None))
    }

    /// Registers (or retrieves) the histogram `name` at `index`.
    pub fn register_histogram_idx(&self, name: &'static str, index: u32) -> Histogram {
        self.hist_key((name, Some(index)))
    }

    fn hist_key(&self, key: Key) -> Histogram {
        Histogram {
            cell: Arc::clone(
                self.inner.lock().hists.entry(key).or_insert_with(|| Arc::new(HistCell::new())),
            ),
            enabled: Arc::clone(&self.enabled),
        }
    }

    /// Registers `source` under `name`; its counters appear in
    /// snapshots as `name.<key>`, read at snapshot time. Re-registering
    /// a name replaces the previous source (fresh store instances in
    /// tests and examples supersede stale ones).
    pub fn register_source(&self, name: &'static str, source: Arc<dyn MetricSource>) {
        self.inner.lock().sources.insert(name, source);
    }

    /// Zeroes every counter, gauge, and histogram and clears span
    /// aggregates and the slow-op log. Registered instruments and
    /// sources stay registered (live handles keep working) — this is
    /// the "fresh measurement window" benches and examples use.
    pub fn reset(&self) {
        {
            let inner = self.inner.lock();
            for c in inner.counters.values() {
                c.store(0, Ordering::Relaxed);
            }
            for g in inner.gauges.values() {
                g.store(0, Ordering::Relaxed);
            }
            for h in inner.hists.values() {
                h.reset();
            }
        }
        self.spans.lock().clear();
        self.slow.lock().clear();
    }

    /// Turns the slow-op log on at `threshold` (spans at least that
    /// long are ring-buffered), or off with `None` (the default —
    /// benches run with it off).
    pub fn set_slow_threshold(&self, threshold: Option<std::time::Duration>) {
        let ns =
            threshold.map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX).max(1)).unwrap_or(0);
        self.slow_threshold_ns.store(ns, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot of every instrument, span
    /// aggregate, slow op, and registered source. Sources are read
    /// *now* — the no-double-counting contract of the meter bridge.
    pub fn snapshot(&self) -> crate::StatsSnapshot {
        let (mut counters, gauges, histograms, sources) = {
            let inner = self.inner.lock();
            let counters: Vec<(String, u64)> = inner
                .counters
                .iter()
                .map(|((n, i), c)| (render(n, *i), c.load(Ordering::Relaxed)))
                .collect();
            let gauges: Vec<(String, i64)> = inner
                .gauges
                .iter()
                .map(|((n, i), g)| (render(n, *i), g.load(Ordering::Relaxed)))
                .collect();
            let histograms: Vec<HistogramStat> =
                inner.hists.iter().map(|((n, i), h)| h.snapshot(render(n, *i))).collect();
            let sources: Vec<(&'static str, Arc<dyn MetricSource>)> =
                inner.sources.iter().map(|(n, s)| (*n, Arc::clone(s))).collect();
            (counters, gauges, histograms, sources)
        };
        // Sources run with the registry unlocked: collect() is foreign
        // code, and obs must never hold one of its locks across a call
        // that could acquire somebody else's.
        for (name, src) in sources {
            let mut v = SourceVisitor { prefix: name, out: Vec::new() };
            src.collect(&mut v);
            counters.extend(v.out);
        }
        counters.sort();
        let spans: Vec<crate::SpanStat> = self
            .spans
            .lock()
            .iter()
            .map(|(k, agg)| crate::SpanStat {
                name: k.name,
                parent: k.parent,
                index: k.index,
                count: agg.count,
                total_ns: agg.total_ns,
            })
            .collect();
        let slow_ops: Vec<SlowOp> = self.slow.lock().snapshot();
        crate::StatsSnapshot { counters, gauges, histograms, spans, slow_ops }
    }
}
