//! The rule engine behind `cpdb-lint`: four repo invariants enforced
//! by hand-rolled line/token scanning (no external parser, same spirit
//! as `perf-gate`'s hand-rolled JSON reader).
//!
//! | rule | invariant |
//! |------|-----------|
//! | `std-sync`       | `std::sync` lock primitives (`Mutex`, `RwLock`, `Condvar`, guards) appear only inside `crates/shims` — everything else goes through the diagnosable shim |
//! | `unwrap`         | no `.unwrap()` / `.expect(` in non-test library code; audited residue lives in `ci/cpdb-lint.allow` with an exact per-file budget |
//! | `meter-doc`      | every `pub fn` in `cpdb-storage` that charges the interaction meter says so in its doc comment |
//! | `unlabeled-lock` | every `Mutex` / `RwLock` construction outside the shims uses the `::labeled("site", …)` form so lock-order diagnostics can name it |
//! | `obs-name`       | every obs-registry `register_*` call takes a static string-literal instrument name, and each name literal appears at exactly one library call site repo-wide (the cross-file pass lives in the `cpdb-lint` binary) |
//!
//! The scanner works line by line after masking string literals and
//! stripping `//` comments; `#[cfg(test)]` modules, `tests/`,
//! `benches/` and `examples/` are exempt from every rule except
//! `std-sync` (test code must still use the shim, or the diagnostics
//! it exists to feed would go blind). Raw strings and block comments
//! are not modelled — the repo style avoids both around lock and
//! error-handling code, and a false positive is a one-line fix.
//!
//! Scanning is intentionally textual: it cannot be fooled less than a
//! real parser, but it also cannot rot — there is no grammar to chase
//! across toolchain upgrades, and the whole engine is unit-testable
//! with string fixtures (see the bottom of this file).

#![forbid(unsafe_code)]

use std::collections::BTreeMap;

/// One rule hit. `file` is repo-relative, `line` is 1-based.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.msg)
    }
}

/// `std::sync` primitives that must not leak outside the shims.
/// Everything else under `std::sync` (`Arc`, `atomic`, `mpsc`,
/// `OnceLock`, …) is fine anywhere.
const FORBIDDEN_SYNC: &[&str] =
    &["Mutex", "RwLock", "Condvar", "MutexGuard", "RwLockReadGuard", "RwLockWriteGuard", "Barrier"];

/// Methods on `Meter` that charge the interaction model. A `pub fn`
/// body calling one of these must document the charge.
const CHARGE_METHODS: &[&str] =
    &["round_trip", "page_read", "checkpoint_page", "wave", "tally", "sync"];

/// Words a doc comment can use to describe a meter charge. Matched
/// case-insensitively against the joined doc text.
const CHARGE_WORDS: &[&str] = &[
    "round trip",
    "round-trip",
    "page read",
    "page write",
    "page_read",
    "checkpoint",
    "charge",
    "meter",
    "statement",
    "sync",
    "cost",
    "free",
];

/// Whether this repo-relative path is scanned at all.
pub fn scannable(path: &str) -> bool {
    path.ends_with(".rs") && !path.starts_with("crates/shims/") && !path.contains("/target/")
}

/// Whether a path is test-only code, exempt from every rule except
/// `std-sync`.
fn test_path(path: &str) -> bool {
    path.contains("/tests/") || path.contains("/benches/") || path.contains("/examples/")
}

/// A source line after preprocessing, with enough context for the
/// rules: the masked text, whether it sits inside a `#[cfg(test)]`
/// module, and whether it is (doc-)comment only.
struct Line<'a> {
    raw: &'a str,
    masked: String,
    in_test_mod: bool,
    comment_only: bool,
}

/// Masks string literal *contents* with spaces (keeping the quotes)
/// and strips `//` comments, so token scans cannot match inside either.
/// Handles `\"` escapes; raw strings and `/* */` are out of scope.
fn mask_line(line: &str) -> (String, bool) {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    // Swallow the escaped char so \" does not end the
                    // literal.
                    chars.next();
                    out.push_str("  ");
                }
                '"' => {
                    in_str = false;
                    out.push('"');
                }
                _ => out.push(' '),
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push('"');
            }
            '/' if chars.peek() == Some(&'/') => break,
            _ => out.push(c),
        }
    }
    let trimmed = line.trim_start();
    let comment_only =
        trimmed.starts_with("//") || trimmed.starts_with("///") || trimmed.starts_with("//!");
    (out, comment_only)
}

fn brace_delta(masked: &str) -> i64 {
    let mut d = 0;
    for c in masked.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

/// Preprocesses a file into [`Line`]s, marking `#[cfg(test)]` module
/// bodies by brace counting from the `mod` item the attribute guards.
fn preprocess(text: &str) -> Vec<Line<'_>> {
    let mut lines = Vec::new();
    let mut pending_cfg_test = false;
    let mut test_depth: Option<i64> = None;
    for raw in text.lines() {
        let (masked, comment_only) = mask_line(raw);
        let trimmed = masked.trim();
        let mut in_test_mod = test_depth.is_some();
        if test_depth.is_none() {
            if trimmed.starts_with("#[cfg(test)]") {
                pending_cfg_test = true;
            } else if pending_cfg_test && trimmed.contains("mod ") {
                test_depth = Some(0);
                in_test_mod = true;
                pending_cfg_test = false;
            } else if !trimmed.is_empty() && !trimmed.starts_with("#[") && !comment_only {
                pending_cfg_test = false;
            }
        }
        if let Some(depth) = &mut test_depth {
            *depth += brace_delta(&masked);
            if *depth <= 0 && masked.contains('}') {
                test_depth = None;
            }
        }
        lines.push(Line { raw, masked, in_test_mod, comment_only });
    }
    lines
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// All identifier tokens in a string.
fn tokens(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut start = None;
    for (i, c) in s.char_indices() {
        if is_ident_char(c) {
            if start.is_none() {
                start = Some(i);
            }
        } else if let Some(st) = start.take() {
            out.push(&s[st..i]);
        }
    }
    if let Some(st) = start {
        out.push(&s[st..]);
    }
    out
}

/// Rule `std-sync`: a `std::sync::` path or import must not reach a
/// lock primitive. Scans the masked text joined across lines so a
/// braced import list spanning lines is still seen whole.
fn check_std_sync(path: &str, lines: &[Line<'_>], out: &mut Vec<Violation>) {
    for (i, line) in lines.iter().enumerate() {
        if line.comment_only {
            continue;
        }
        let Some(pos) = line.masked.find("std::sync::") else { continue };
        // The import/path may span lines (a long braced list); join a
        // small window, which is more than any rustfmt-ed use needs.
        let mut scope = line.masked[pos..].to_string();
        for follow in lines.iter().skip(i + 1).take(8) {
            if scope.contains(';') || scope.contains(" fn ") {
                break;
            }
            scope.push(' ');
            scope.push_str(&follow.masked);
        }
        let scope = scope.split(';').next().unwrap_or(&scope);
        for tok in tokens(scope) {
            if FORBIDDEN_SYNC.contains(&tok) {
                out.push(Violation {
                    file: path.to_owned(),
                    line: i + 1,
                    rule: "std-sync",
                    msg: format!(
                        "std::sync::{tok} outside crates/shims — use the parking_lot shim so \
                         lock-order diagnostics see it"
                    ),
                });
            }
        }
    }
}

/// Rule `unwrap`: `.unwrap()` / `.expect(` in non-test library code.
/// Returned as raw hits; the caller nets them against the allowlist.
fn check_unwrap(path: &str, lines: &[Line<'_>], out: &mut Vec<Violation>) {
    if test_path(path) {
        return;
    }
    let needle_unwrap = concat!(".unw", "rap()");
    let needle_expect = concat!(".exp", "ect(");
    for (i, line) in lines.iter().enumerate() {
        if line.comment_only || line.in_test_mod {
            continue;
        }
        for needle in [needle_unwrap, needle_expect] {
            for _ in 0..line.masked.matches(needle).count() {
                out.push(Violation {
                    file: path.to_owned(),
                    line: i + 1,
                    rule: "unwrap",
                    msg: format!(
                        "{needle}…) in library code — return a typed error or add the audited \
                         site to ci/cpdb-lint.allow"
                    ),
                });
            }
        }
    }
}

/// Rule `unlabeled-lock`: `Mutex::new(` / `RwLock::new(` outside the
/// shims. The labeled form is what gives lock-order panics their
/// site names.
fn check_unlabeled_lock(path: &str, lines: &[Line<'_>], out: &mut Vec<Violation>) {
    if test_path(path) {
        return;
    }
    for (i, line) in lines.iter().enumerate() {
        if line.comment_only || line.in_test_mod {
            continue;
        }
        for ty in ["Mutex", "RwLock"] {
            let needle = format!("{ty}::new(");
            if line.masked.contains(&needle) {
                out.push(Violation {
                    file: path.to_owned(),
                    line: i + 1,
                    rule: "unlabeled-lock",
                    msg: format!(
                        "{ty}::new(…) constructs an unlabeled lock — use \
                         {ty}::labeled(\"site.name\", …) so diagnostics can name it"
                    ),
                });
            }
        }
    }
}

/// Rule `meter-doc`: a `pub fn` in `cpdb-storage` whose body calls a
/// meter-charging method must mention the charge in its doc comment.
fn check_meter_doc(path: &str, lines: &[Line<'_>], out: &mut Vec<Violation>) {
    if !path.starts_with("crates/storage/src/") || test_path(path) {
        return;
    }
    let mut i = 0;
    while i < lines.len() {
        let line = &lines[i];
        let is_pub_fn = !line.comment_only
            && !line.in_test_mod
            && (line.masked.trim_start().starts_with("pub fn ")
                || line.masked.trim_start().starts_with("pub const fn "));
        if !is_pub_fn {
            i += 1;
            continue;
        }
        // Join the doc comment block immediately above.
        let mut doc = String::new();
        let mut j = i;
        while j > 0 {
            let above = lines[j - 1].raw.trim_start();
            if above.starts_with("///") || above.starts_with("#[") {
                if above.starts_with("///") {
                    doc.push_str(above.trim_start_matches('/'));
                    doc.push(' ');
                }
                j -= 1;
            } else {
                break;
            }
        }
        // Walk the body by brace counting from the signature line.
        let mut depth = 0i64;
        let mut body = String::new();
        let mut k = i;
        let mut opened = false;
        while k < lines.len() {
            let l = &lines[k];
            depth += brace_delta(&l.masked);
            if l.masked.contains('{') {
                opened = true;
            }
            // The signature line is included too: a one-line fn has
            // its whole body there.
            body.push_str(&l.masked);
            body.push('\n');
            if opened && depth <= 0 {
                break;
            }
            // A signature with no body (trait decl) ends at `;`.
            if !opened && l.masked.contains(';') {
                break;
            }
            k += 1;
        }
        let charges = CHARGE_METHODS.iter().any(|m| {
            body.contains(&format!("meter.{m}(")) || body.contains(&format!("meter().{m}("))
        });
        if charges {
            let doc_lc = doc.to_lowercase();
            if !CHARGE_WORDS.iter().any(|w| doc_lc.contains(w)) {
                out.push(Violation {
                    file: path.to_owned(),
                    line: i + 1,
                    rule: "meter-doc",
                    msg: "pub fn charges the interaction meter but its doc comment never \
                          mentions the charge (say e.g. \"One round trip.\")"
                        .to_owned(),
                });
            }
        }
        i = k.max(i) + 1;
    }
}

/// Obs-registry methods whose first argument is an instrument name.
/// Needles include the `(` so `register_counter(` cannot also match
/// the `_idx` variant.
const OBS_REGISTER_FNS: &[&str] = &[
    "register_counter(",
    "register_counter_idx(",
    "register_gauge(",
    "register_gauge_idx(",
    "register_histogram(",
    "register_histogram_idx(",
    "register_source(",
];

/// One obs-registry registration call site. `name` is the string
/// literal passed as the instrument name, or `None` when the first
/// argument is not a literal (an `obs-name` violation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsSite {
    pub line: usize,
    pub name: Option<String>,
}

/// Rule `obs-name`, per-file half: every `register_*` call site in
/// library code with its instrument-name literal. Exempt: test paths,
/// `#[cfg(test)]` modules, and `crates/obs/src/` itself (the registry's
/// own unit tests and doc examples register freely).
pub fn obs_register_sites(path: &str, text: &str) -> Vec<ObsSite> {
    if !scannable(path) || test_path(path) || path.starts_with("crates/obs/src/") {
        return Vec::new();
    }
    let lines = preprocess(text);
    let mut out = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        if line.comment_only || line.in_test_mod {
            continue;
        }
        for needle in OBS_REGISTER_FNS {
            for (pos, _) in line.masked.match_indices(needle) {
                // Skip declarations (`pub fn register_counter(…`) —
                // only call sites (`.register_counter(` /
                // `reg.register_counter(`) name an instrument.
                if !line.masked[..pos].ends_with('.') {
                    continue;
                }
                let after = pos + needle.len();
                // The first argument may sit on the next line if
                // rustfmt wrapped the call.
                let (arg_line, arg_at) = if line.masked[after..].trim().is_empty() {
                    match lines.get(i + 1) {
                        Some(next) if !next.comment_only => (next, 0),
                        _ => (line, after),
                    }
                } else {
                    (line, after)
                };
                let arg = arg_line.masked[arg_at..].trim_start();
                if !arg.starts_with('"') {
                    out.push(ObsSite { line: i + 1, name: None });
                    continue;
                }
                // Masking keeps quotes and char positions; read the
                // literal's text back out of the raw line.
                let open = arg_at + (arg_line.masked.len() - arg_at - arg.len()) + 1;
                let name: String = arg_line.raw[open..].chars().take_while(|c| *c != '"').collect();
                out.push(ObsSite { line: i + 1, name: Some(name) });
            }
        }
    }
    out
}

/// Rule `obs-name`, cross-file half: each instrument-name literal must
/// be registered at exactly one call site repo-wide (registration is
/// idempotent, so a second site would silently share the first's cell
/// — and the namespace stops being greppable). Input: every file's
/// [`obs_register_sites`] as `(file, site)` pairs.
pub fn check_obs_name_uniqueness(sites: &[(String, ObsSite)]) -> Vec<Violation> {
    let mut by_name: BTreeMap<&str, Vec<(&str, usize)>> = BTreeMap::new();
    let mut out = Vec::new();
    for (file, site) in sites {
        match &site.name {
            Some(name) => by_name.entry(name).or_default().push((file, site.line)),
            None => out.push(Violation {
                file: file.clone(),
                line: site.line,
                rule: "obs-name",
                msg: "obs register_* call must name its instrument with a static string \
                      literal (no computed names — the namespace must stay greppable)"
                    .to_owned(),
            }),
        }
    }
    for (name, at) in by_name {
        if at.len() > 1 {
            let others: Vec<String> = at.iter().map(|(f, l)| format!("{f}:{l}")).collect();
            for (file, line) in &at {
                out.push(Violation {
                    file: (*file).to_owned(),
                    line: *line,
                    rule: "obs-name",
                    msg: format!(
                        "instrument name {name:?} is registered at {} call sites ({}) — hoist \
                         the registration into one shared site",
                        at.len(),
                        others.join(", "),
                    ),
                });
            }
        }
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

/// Runs every per-file rule over one file. `path` must be
/// repo-relative with forward slashes. (The cross-file half of
/// `obs-name` runs separately: [`obs_register_sites`] +
/// [`check_obs_name_uniqueness`].)
pub fn scan_file(path: &str, text: &str) -> Vec<Violation> {
    let mut out = Vec::new();
    if !scannable(path) {
        return out;
    }
    let lines = preprocess(text);
    check_std_sync(path, &lines, &mut out);
    check_unwrap(path, &lines, &mut out);
    check_unlabeled_lock(path, &lines, &mut out);
    check_meter_doc(path, &lines, &mut out);
    out
}

/// Parses `ci/cpdb-lint.allow`: `#` comments, blank lines, otherwise
/// `<path> <count>` — the *exact* number of audited `unwrap`-rule hits
/// that file is allowed.
pub fn parse_allowlist(text: &str) -> Result<BTreeMap<String, usize>, String> {
    let mut out = BTreeMap::new();
    for (no, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(path), Some(count)) = (parts.next(), parts.next()) else {
            return Err(format!("allowlist line {}: want `<path> <count>`, got {line:?}", no + 1));
        };
        let Ok(count) = count.parse::<usize>() else {
            return Err(format!("allowlist line {}: bad count {count:?}", no + 1));
        };
        out.insert(path.to_owned(), count);
    }
    Ok(out)
}

/// Nets `unwrap`-rule hits against the allowlist. The budget is a
/// ratchet: more hits than budgeted fails, but so does *fewer* — a
/// burned-down file must shrink its committed budget in the same PR,
/// so the residue can only go down.
pub fn apply_allowlist(
    violations: Vec<Violation>,
    allow: &BTreeMap<String, usize>,
) -> Vec<Violation> {
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for v in violations.iter().filter(|v| v.rule == "unwrap") {
        *counts.entry(v.file.as_str()).or_default() += 1;
    }
    let mut out: Vec<Violation> = Vec::new();
    for v in violations.iter() {
        if v.rule != "unwrap" || !allow.contains_key(&v.file) {
            out.push(v.clone());
        }
    }
    for (file, budget) in allow {
        let actual = counts.get(file.as_str()).copied().unwrap_or(0);
        if actual > *budget {
            out.push(Violation {
                file: file.clone(),
                line: 0,
                rule: "unwrap",
                msg: format!(
                    "{actual} unwrap/expect sites but the allowlist budgets {budget} — burn the \
                     new ones down or re-audit and raise the budget"
                ),
            });
        } else if actual < *budget {
            out.push(Violation {
                file: file.clone(),
                line: 0,
                rule: "unwrap",
                msg: format!(
                    "allowlist budgets {budget} unwrap/expect sites but only {actual} remain — \
                     lower the budget in ci/cpdb-lint.allow (the ratchet only turns one way)"
                ),
            });
        }
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn std_sync_lock_leak_is_flagged() {
        let src = "use std::sync::{Arc, Mutex};\nfn f() {}\n";
        let v = scan_file("crates/core/src/x.rs", src);
        assert_eq!(rules(&v), ["std-sync"]);
        assert!(v[0].msg.contains("Mutex"));
    }

    #[test]
    fn std_sync_allows_arc_atomics_and_channels() {
        let src = "use std::sync::Arc;\nuse std::sync::atomic::{AtomicU64, Ordering};\n\
                   use std::sync::mpsc;\nuse std::sync::OnceLock;\n";
        assert!(scan_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn std_sync_sees_multiline_imports_and_paths() {
        let src = "use std::sync::{\n    Arc,\n    RwLock,\n};\n";
        assert_eq!(rules(&scan_file("crates/core/src/x.rs", src)), ["std-sync"]);
        let src = "fn f() { let c = std::sync::Condvar::new(); }\n";
        assert_eq!(rules(&scan_file("crates/core/src/x.rs", src)), ["std-sync"]);
    }

    #[test]
    fn std_sync_applies_even_in_test_modules() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::sync::Mutex;\n}\n";
        assert_eq!(rules(&scan_file("crates/core/src/x.rs", src)), ["std-sync"]);
    }

    #[test]
    fn shims_are_exempt_from_everything() {
        let src = concat!("use std::sync::Mutex;\nfn f() { None::<u8>.unw", "rap(); }\n");
        assert!(scan_file("crates/shims/parking_lot/src/diag.rs", src).is_empty());
    }

    #[test]
    fn unwrap_in_library_code_is_flagged() {
        let src = concat!("fn f() { None::<u8>.unw", "rap(); Some(1).exp", "ect(\"x\"); }\n");
        let v = scan_file("crates/core/src/x.rs", src);
        assert_eq!(rules(&v), ["unwrap", "unwrap"]);
    }

    #[test]
    fn unwrap_in_tests_comments_and_strings_is_fine() {
        let src = concat!(
            "//! doc: .unw",
            "rap() is fine here\n",
            "fn f() { let s = \".unw",
            "rap()\"; }\n",
            "#[cfg(test)]\nmod tests {\n    fn g() { None::<u8>.unw",
            "rap(); }\n}\n"
        );
        assert!(scan_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn code_after_a_test_module_is_scanned_again() {
        let src = concat!(
            "#[cfg(test)]\nmod tests {\n    fn g() { None::<u8>.unw",
            "rap(); }\n}\n",
            "fn f() { None::<u8>.unw",
            "rap(); }\n"
        );
        let v = scan_file("crates/core/src/x.rs", src);
        assert_eq!(rules(&v), ["unwrap"]);
        assert_eq!(v[0].line, 5);
    }

    #[test]
    fn unlabeled_lock_construction_is_flagged() {
        let src = "fn f() { let m = Mutex::new(0); let r = RwLock::new(1); }\n";
        let v = scan_file("crates/storage/src/x.rs", src);
        assert_eq!(rules(&v), ["unlabeled-lock", "unlabeled-lock"]);
        let src = "fn f() { let m = Mutex::labeled(\"site\", 0); }\n";
        assert!(scan_file("crates/storage/src/x.rs", src).is_empty());
    }

    #[test]
    fn undocumented_meter_charge_is_flagged() {
        let src = "impl T {\n    /// Does a thing.\n    pub fn f(&self) {\n        \
                   self.meter.round_trip();\n    }\n}\n";
        let v = scan_file("crates/storage/src/x.rs", src);
        assert_eq!(rules(&v), ["meter-doc"]);
        // The same body with a documenting doc comment passes.
        let src = "impl T {\n    /// One round trip.\n    pub fn f(&self) {\n        \
                   self.meter.round_trip();\n    }\n}\n";
        assert!(scan_file("crates/storage/src/x.rs", src).is_empty());
        // Private fns and non-storage crates are out of scope.
        let src = "fn f(m: &Meter) { m.round_trip(); }\n";
        assert!(scan_file("crates/storage/src/x.rs", src).is_empty());
        let src = "/// x\npub fn f(m: &Meter) { meter.round_trip(); }\n";
        assert!(scan_file("crates/core/src/x.rs", src).is_empty());
    }

    #[test]
    fn meter_clone_is_not_a_charge() {
        let src = "impl T {\n    /// Opens.\n    pub fn f(&self) -> Meter {\n        \
                   self.meter.clone()\n    }\n}\n";
        assert!(scan_file("crates/storage/src/x.rs", src).is_empty());
    }

    #[test]
    fn allowlist_is_an_exact_ratchet() {
        let allow = parse_allowlist("# audited residue\ncrates/core/src/x.rs 2\n")
            .unwrap_or_else(|e| panic!("{e}"));
        let hit = |line| Violation {
            file: "crates/core/src/x.rs".to_owned(),
            line,
            rule: "unwrap",
            msg: String::new(),
        };
        // Exactly on budget: clean.
        assert!(apply_allowlist(vec![hit(1), hit(2)], &allow).is_empty());
        // Over budget: fails.
        let over = apply_allowlist(vec![hit(1), hit(2), hit(3)], &allow);
        assert_eq!(over.len(), 1);
        assert!(over[0].msg.contains("budgets 2"));
        // Under budget: fails too, forcing the budget down.
        let under = apply_allowlist(vec![hit(1)], &allow);
        assert_eq!(under.len(), 1);
        assert!(under[0].msg.contains("only 1 remain"));
    }

    #[test]
    fn allowlist_rejects_malformed_lines() {
        assert!(parse_allowlist("crates/x.rs").is_err());
        assert!(parse_allowlist("crates/x.rs lots").is_err());
    }

    #[test]
    fn obs_sites_extract_literal_names() {
        let src = concat!(
            "fn f() {\n",
            "    let c = reg.register_counter(\"wal.sync.leaders\");\n",
            "    let h = reg.register_histogram_idx(\"shard.latency_ns\", i);\n",
            "}\n",
        );
        let sites = obs_register_sites("crates/storage/src/x.rs", src);
        assert_eq!(
            sites,
            vec![
                ObsSite { line: 2, name: Some("wal.sync.leaders".to_owned()) },
                ObsSite { line: 3, name: Some("shard.latency_ns".to_owned()) },
            ]
        );
    }

    #[test]
    fn obs_sites_flag_computed_names() {
        let src = "fn f(n: &'static str) { let c = reg.register_counter(n); }\n";
        let sites = obs_register_sites("crates/core/src/x.rs", src);
        assert_eq!(sites, vec![ObsSite { line: 1, name: None }]);
        let v = check_obs_name_uniqueness(&[("crates/core/src/x.rs".to_owned(), sites[0].clone())]);
        assert_eq!(rules(&v), ["obs-name"]);
        assert!(v[0].msg.contains("string literal"));
    }

    #[test]
    fn obs_sites_skip_declarations_tests_and_the_obs_crate() {
        let decl = "pub fn register_counter(&self, name: &'static str) -> Counter {\n}\n";
        assert!(obs_register_sites("crates/core/src/x.rs", decl).is_empty());
        let src = "fn f() { reg.register_counter(\"a.b\"); }\n";
        assert!(obs_register_sites("crates/obs/src/registry.rs", src).is_empty());
        assert!(obs_register_sites("crates/core/tests/x.rs", src).is_empty());
        let in_test =
            "#[cfg(test)]\nmod tests {\n    fn f() { reg.register_counter(\"t.c\"); }\n}\n";
        assert!(obs_register_sites("crates/core/src/x.rs", in_test).is_empty());
    }

    #[test]
    fn obs_sites_follow_a_wrapped_first_argument() {
        let src =
            "fn f() {\n    let c = reg.register_counter(\n        \"very.long.name\",\n    );\n}\n";
        let sites = obs_register_sites("crates/core/src/x.rs", src);
        assert_eq!(sites, vec![ObsSite { line: 2, name: Some("very.long.name".to_owned()) }]);
    }

    #[test]
    fn duplicate_instrument_names_are_flagged_at_every_site() {
        let site = |line, name: &str| ObsSite { line, name: Some(name.to_owned()) };
        let sites = vec![
            ("crates/a/src/x.rs".to_owned(), site(3, "dup.name")),
            ("crates/b/src/y.rs".to_owned(), site(9, "dup.name")),
            ("crates/b/src/y.rs".to_owned(), site(12, "unique.name")),
        ];
        let v = check_obs_name_uniqueness(&sites);
        assert_eq!(rules(&v), ["obs-name", "obs-name"]);
        assert!(v[0].msg.contains("dup.name") && v[0].msg.contains("2 call sites"));
        assert_eq!((v[0].file.as_str(), v[0].line), ("crates/a/src/x.rs", 3));
        assert_eq!((v[1].file.as_str(), v[1].line), ("crates/b/src/y.rs", 9));
    }
}
