//! `cpdb-lint` — repo-invariant lints for this workspace.
//!
//! ```text
//! cargo run -p cpdb-xtask --bin cpdb-lint            # from the repo root
//! cargo run -p cpdb-xtask --bin cpdb-lint -- --root . --allow ci/cpdb-lint.allow
//! ```
//!
//! Scans every `.rs` file under `crates/` and `src/` (excluding
//! `crates/shims/`) for the five invariants documented in
//! `cpdb_xtask` (lib.rs), nets the `unwrap` rule against the audited
//! allowlist, runs the cross-file half of the `obs-name` rule (each
//! instrument-name literal registered at exactly one call site
//! repo-wide), prints one line per violation, and exits nonzero if any
//! remain. See ARCHITECTURE.md, "Concurrency and lock order", for why
//! these invariants exist.

#![forbid(unsafe_code)]

use cpdb_xtask::{
    apply_allowlist, check_obs_name_uniqueness, obs_register_sites, parse_allowlist, scan_file,
    scannable, ObsSite, Violation,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Recursively collects scannable `.rs` files, repo-relative.
fn collect(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect(root, &path, out)?;
        } else {
            let rel = match path.strip_prefix(root) {
                Ok(rel) => rel.to_string_lossy().replace('\\', "/"),
                Err(_) => continue,
            };
            if scannable(&rel) {
                out.push(rel);
            }
        }
    }
    Ok(())
}

fn run() -> Result<Vec<Violation>, String> {
    let mut root = PathBuf::from(".");
    let mut allow_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return Err("--root needs a directory".to_owned()),
            },
            "--allow" => match args.next() {
                Some(f) => allow_path = Some(PathBuf::from(f)),
                None => return Err("--allow needs a file".to_owned()),
            },
            other => {
                return Err(format!(
                    "unknown argument {other:?}\nusage: cpdb-lint [--root <repo>] [--allow <file>]"
                ))
            }
        }
    }
    let allow_path = allow_path.unwrap_or_else(|| root.join("ci/cpdb-lint.allow"));
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(text) => parse_allowlist(&text)?,
        // A missing allowlist just means a zero budget everywhere.
        Err(_) => BTreeMap::new(),
    };

    let mut files = Vec::new();
    for top in ["crates", "src"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect(&root, &dir, &mut files)?;
        }
    }
    files.sort();

    let mut raw = Vec::new();
    let mut obs_sites: Vec<(String, ObsSite)> = Vec::new();
    for rel in &files {
        let text = std::fs::read_to_string(root.join(rel))
            .map_err(|e| format!("cannot read {rel}: {e}"))?;
        raw.extend(scan_file(rel, &text));
        obs_sites.extend(obs_register_sites(rel, &text).into_iter().map(|s| (rel.clone(), s)));
    }
    let mut violations = apply_allowlist(raw, &allow);
    violations.extend(check_obs_name_uniqueness(&obs_sites));
    Ok(violations)
}

fn main() -> ExitCode {
    match run() {
        Ok(violations) if violations.is_empty() => {
            println!("cpdb-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("cpdb-lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("cpdb-lint: {e}");
            ExitCode::FAILURE
        }
    }
}
