//! # cpdb-workload — synthetic databases and evaluation workloads
//!
//! The experimental setup of Section 4 of Buneman, Chapman & Cheney
//! (SIGMOD 2006): MiMI-like target and OrganelleDB-like source
//! generators, the six update patterns of Table 2, and the five
//! deletion patterns of Table 3. Workloads are deterministic functions
//! of a seed, and every generated script replays cleanly against the
//! formal semantics of `cpdb-update`.
//!
//! ```
//! use cpdb_workload::{generate, GenConfig, UpdatePattern};
//!
//! let cfg = GenConfig::for_length(UpdatePattern::Mix, 100, 42);
//! let workload = generate(&cfg, 100);
//! let mut ws = workload.workspace();
//! ws.apply_script(&workload.script).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod patterns;
mod synthetic;

pub use patterns::{generate, DeletionPattern, GenConfig, UpdatePattern, Workload};
pub use synthetic::{mimi_like, organelle_like};
