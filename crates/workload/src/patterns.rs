//! The update patterns of Table 2 and deletion patterns of Table 3.
//!
//! | Pattern | Meaning (Table 2) |
//! |---|---|
//! | `add` | all random adds |
//! | `delete` | all random deletes |
//! | `copy` | all random copies |
//! | `ac-mix` | equal mix of random adds and copies |
//! | `mix` | equal mix of random adds, deletes, copies |
//! | `real` | copy one subtree, add 3 nodes, delete 3 nodes |
//!
//! | Deletion pattern | Meaning (Table 3) |
//! |---|---|
//! | `del-random` | paths deleted at random |
//! | `del-add` | all added paths deleted |
//! | `del-copy` | only copies deleted |
//! | `del-mix` | 50–50 mix of adds and copies deleted |
//! | `del-real` | 3 nodes from copied subtree deleted |
//!
//! The generator simulates the evolving target so every emitted update
//! is valid when replayed in order; scripts are deterministic functions
//! of the seed.

use crate::synthetic::{mimi_like, organelle_like};
use cpdb_tree::{Database, Label, Path, Tree};
use cpdb_update::{AtomicUpdate, InsertContent, UpdateScript, Workspace};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// An update pattern from Table 2.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum UpdatePattern {
    /// All random adds.
    Add,
    /// All random deletes.
    Delete,
    /// All random copies.
    Copy,
    /// Equal mix of random adds and copies.
    AcMix,
    /// Equal mix of random adds, deletes, copies.
    Mix,
    /// Copy one subtree, add 3 nodes, delete 3 nodes.
    Real,
}

impl UpdatePattern {
    /// The patterns of Experiment 1 (Figure 7), in the paper's order.
    pub const EXPERIMENT_1: [UpdatePattern; 5] = [
        UpdatePattern::Add,
        UpdatePattern::Copy,
        UpdatePattern::Delete,
        UpdatePattern::AcMix,
        UpdatePattern::Mix,
    ];

    /// The Table 2 name.
    pub fn name(self) -> &'static str {
        match self {
            UpdatePattern::Add => "add",
            UpdatePattern::Delete => "delete",
            UpdatePattern::Copy => "copy",
            UpdatePattern::AcMix => "ac-mix",
            UpdatePattern::Mix => "mix",
            UpdatePattern::Real => "real",
        }
    }
}

impl fmt::Display for UpdatePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A deletion-victim pattern from Table 3 (applies to patterns that
/// delete — `mix`, `delete`, `real`).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum DeletionPattern {
    /// Paths deleted at random.
    Random,
    /// All added paths deleted.
    Added,
    /// Only copies deleted.
    Copied,
    /// 50–50 mix of adds and copies deleted.
    MixAddCopy,
    /// 3 nodes from a copied subtree deleted.
    Real,
}

impl DeletionPattern {
    /// The patterns of Experiment 3 (Figure 11), in the paper's order.
    pub const EXPERIMENT_3: [DeletionPattern; 5] = [
        DeletionPattern::Random,
        DeletionPattern::Added,
        DeletionPattern::MixAddCopy,
        DeletionPattern::Copied,
        DeletionPattern::Real,
    ];

    /// The Table 3 name.
    pub fn name(self) -> &'static str {
        match self {
            DeletionPattern::Random => "del-random",
            DeletionPattern::Added => "del-add",
            DeletionPattern::Copied => "del-copy",
            DeletionPattern::MixAddCopy => "del-mix",
            DeletionPattern::Real => "del-real",
        }
    }
}

impl fmt::Display for DeletionPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Configuration of one generated workload.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Which Table 2 pattern to follow.
    pub pattern: UpdatePattern,
    /// Which Table 3 victim policy deletes use.
    pub deletion: DeletionPattern,
    /// RNG seed; equal configs generate equal workloads.
    pub seed: u64,
    /// Records in the OrganelleDB-like source.
    pub source_records: usize,
    /// Records in the initial MiMI-like target.
    pub target_records: usize,
}

impl GenConfig {
    /// A sensible configuration for a script of `len` steps.
    pub fn for_length(pattern: UpdatePattern, len: usize, seed: u64) -> GenConfig {
        GenConfig {
            pattern,
            deletion: DeletionPattern::Random,
            seed,
            source_records: (len / 4).max(64),
            // Enough pre-existing records that delete-heavy patterns
            // never run dry (each record has 3 deletable children).
            target_records: len.max(256),
        }
    }

    /// Overrides the deletion pattern.
    pub fn with_deletion(mut self, deletion: DeletionPattern) -> GenConfig {
        self.deletion = deletion;
        self
    }
}

/// A generated workload: initial databases plus a valid update script.
pub struct Workload {
    /// The target database's name (`T`).
    pub target_name: Label,
    /// Initial contents of the target.
    pub target_initial: Tree,
    /// The source database's name (`OrganelleDB`).
    pub source_name: Label,
    /// Contents of the source.
    pub source: Tree,
    /// The update script (valid when replayed in order).
    pub script: UpdateScript,
    /// The configuration that produced it.
    pub config: GenConfig,
}

impl Workload {
    /// A fresh in-memory workspace over this workload's databases (for
    /// formal-semantics replay).
    pub fn workspace(&self) -> Workspace {
        Workspace::new(Database::new(self.target_name, self.target_initial.clone()))
            .with_source(Database::new(self.source_name, self.source.clone()))
    }
}

/// Internal generator state: simulates the target to keep updates valid.
struct Generator {
    rng: SmallRng,
    ws: Workspace,
    target_name: Label,
    /// Interior nodes of the target that can host adds/pastes.
    hosts: Vec<Path>,
    /// Deletable edges: (parent, label), by origin.
    added: Vec<(Path, Label)>,
    copied: Vec<(Path, Label)>,
    /// Pre-existing leaf fields (the bulk of random delete victims).
    preexisting: Vec<(Path, Label)>,
    /// Pre-existing whole records (deleted occasionally — a record
    /// delete removes a size-4 subtree).
    preexisting_records: Vec<(Path, Label)>,
    /// Children of copied subtrees (victims for del-real).
    copied_children: Vec<(Path, Label)>,
    source_recs: Vec<Path>,
    fresh: u64,
    deletion: DeletionPattern,
}

impl Generator {
    fn new(cfg: &GenConfig) -> Generator {
        let target_name = Label::new("T");
        let source_name = Label::new("OrganelleDB");
        let target_initial = mimi_like(cfg.target_records, cfg.seed);
        // The source presents the paper's four-level relational view:
        // OrganelleDB/proteins/recN/field (Section 2's DB/R/tid/F).
        let source =
            Tree::node([(Label::new("proteins"), organelle_like(cfg.source_records, cfg.seed))]);
        let t_root = Path::single(target_name);
        let mut preexisting = Vec::new();
        let mut preexisting_records = Vec::new();
        let mut hosts = vec![t_root.clone()];
        for (label, rec) in target_initial.children().expect("target root is a node") {
            preexisting_records.push((t_root.clone(), *label));
            let rec_path = t_root.child(*label);
            hosts.push(rec_path.clone());
            if let Some(children) = rec.children() {
                for child in children.keys() {
                    preexisting.push((rec_path.clone(), *child));
                }
            }
        }
        let table_path = Path::single(source_name).child("proteins");
        let source_recs = source
            .get(&"proteins".parse().expect("path"))
            .and_then(Tree::children)
            .expect("proteins table present")
            .keys()
            .map(|l| table_path.child(*l))
            .collect();
        let ws = Workspace::new(Database::new(target_name, target_initial))
            .with_source(Database::new(source_name, source));
        Generator {
            rng: SmallRng::seed_from_u64(cfg.seed),
            ws,
            target_name,
            hosts,
            added: Vec::new(),
            copied: Vec::new(),
            preexisting,
            preexisting_records,
            copied_children: Vec::new(),
            source_recs,
            fresh: 0,
            deletion: cfg.deletion,
        }
    }

    fn fresh_label(&mut self) -> Label {
        self.fresh += 1;
        Label::new(&format!("n{}", self.fresh))
    }

    fn pick_host(&mut self) -> Path {
        // Hosts may have been deleted; retry until a live one is found.
        loop {
            let i = self.rng.gen_range(0..self.hosts.len());
            let host = self.hosts[i].clone();
            if self.ws.target().contains(&host) {
                return host;
            }
            self.hosts.swap_remove(i);
            if self.hosts.is_empty() {
                return Path::single(self.target_name);
            }
        }
    }

    fn gen_add(&mut self) -> AtomicUpdate {
        let host = self.pick_host();
        let label = self.fresh_label();
        let content = if self.rng.gen_bool(0.5) {
            InsertContent::Empty
        } else {
            InsertContent::Value(cpdb_tree::Value::Int(self.rng.gen_range(0..1_000_000)))
        };
        self.added.push((host.clone(), label));
        if matches!(content, InsertContent::Empty) {
            self.hosts.push(host.child(label));
        }
        AtomicUpdate::Insert { target: host, label, content }
    }

    fn gen_copy(&mut self) -> AtomicUpdate {
        let src = self.source_recs[self.rng.gen_range(0..self.source_recs.len())].clone();
        let host = self.pick_host();
        let label = self.fresh_label();
        let target = host.child(label);
        self.copied.push((host, label));
        self.hosts.push(target.clone());
        // Record the copied record's children as del-real victims.
        if let Ok(sub) = self.ws.resolve(&src) {
            if let Some(children) = sub.children() {
                for child in children.keys() {
                    self.copied_children.push((target.clone(), *child));
                }
            }
        }
        AtomicUpdate::Copy { src, target }
    }

    /// Picks a delete victim per the Table 3 policy; falls back to an
    /// add when the victim pool is dry (keeps scripts the right length).
    fn gen_delete(&mut self) -> AtomicUpdate {
        let pick = |rng: &mut SmallRng, pool: &mut Vec<(Path, Label)>, ws: &Workspace| loop {
            if pool.is_empty() {
                return None;
            }
            let i = rng.gen_range(0..pool.len());
            let (parent, label) = pool.swap_remove(i);
            if ws.target().contains(&parent.child(label)) {
                return Some((parent, label));
            }
        };
        let victim = match self.deletion {
            DeletionPattern::Random => {
                // Any live edge. Leaf fields dominate the tree (3 per
                // record), so random victims are leaf-heavy; whole
                // records go occasionally (10%), exercising subtree
                // deletion without letting it dominate the figures.
                let take_record = self.rng.gen_bool(0.10) && !self.preexisting_records.is_empty();
                if take_record {
                    pick(&mut self.rng, &mut self.preexisting_records, &self.ws)
                } else {
                    let mut all: Vec<u8> = Vec::new();
                    if !self.preexisting.is_empty() {
                        all.push(0);
                    }
                    if !self.added.is_empty() {
                        all.push(1);
                    }
                    if !self.copied.is_empty() {
                        all.push(2);
                    }
                    match all.as_slice() {
                        [] => None,
                        pools => {
                            let which = pools[self.rng.gen_range(0..pools.len())];
                            let pool = match which {
                                0 => &mut self.preexisting,
                                1 => &mut self.added,
                                _ => &mut self.copied,
                            };
                            pick(&mut self.rng, pool, &self.ws)
                        }
                    }
                }
            }
            DeletionPattern::Added => pick(&mut self.rng, &mut self.added, &self.ws),
            DeletionPattern::Copied => pick(&mut self.rng, &mut self.copied, &self.ws),
            DeletionPattern::MixAddCopy => {
                if self.rng.gen_bool(0.5) {
                    pick(&mut self.rng, &mut self.added, &self.ws)
                        .or_else(|| pick(&mut self.rng, &mut self.copied, &self.ws))
                } else {
                    pick(&mut self.rng, &mut self.copied, &self.ws)
                        .or_else(|| pick(&mut self.rng, &mut self.added, &self.ws))
                }
            }
            DeletionPattern::Real => pick(&mut self.rng, &mut self.copied_children, &self.ws),
        };
        match victim {
            Some((target, label)) => AtomicUpdate::Delete { target, label },
            None => self.gen_add(),
        }
    }

    fn next(&mut self, step: usize, pattern: UpdatePattern) -> AtomicUpdate {
        match pattern {
            UpdatePattern::Add => self.gen_add(),
            UpdatePattern::Delete => self.gen_delete(),
            UpdatePattern::Copy => self.gen_copy(),
            UpdatePattern::AcMix => {
                if self.rng.gen_bool(0.5) {
                    self.gen_add()
                } else {
                    self.gen_copy()
                }
            }
            UpdatePattern::Mix => match self.rng.gen_range(0..3) {
                0 => self.gen_add(),
                1 => self.gen_delete(),
                _ => self.gen_copy(),
            },
            UpdatePattern::Real => {
                // Cycle of 7: copy, add ×3 (under the copied root),
                // delete ×3 (per the deletion policy; default: the
                // copied record's original children).
                match step % 7 {
                    0 => self.gen_copy(),
                    1..=3 => {
                        // Add under the most recent copied subtree root
                        // when alive, else anywhere.
                        let host = match self.copied.last() {
                            Some((parent, label)) => {
                                let p = parent.child(*label);
                                if self.ws.target().contains(&p) {
                                    p
                                } else {
                                    self.pick_host()
                                }
                            }
                            None => self.pick_host(),
                        };
                        let label = self.fresh_label();
                        self.added.push((host.clone(), label));
                        AtomicUpdate::Insert {
                            target: host,
                            label,
                            content: InsertContent::Value(cpdb_tree::Value::Int(
                                self.rng.gen_range(0..1_000_000),
                            )),
                        }
                    }
                    _ => {
                        // In the real pattern deletes default to the
                        // copied subtree's nodes unless overridden.
                        if self.deletion == DeletionPattern::Random {
                            let saved = self.deletion;
                            self.deletion = DeletionPattern::Real;
                            let u = self.gen_delete();
                            self.deletion = saved;
                            u
                        } else {
                            self.gen_delete()
                        }
                    }
                }
            }
        }
    }
}

/// Generates a workload of `len` updates under `cfg`.
pub fn generate(cfg: &GenConfig, len: usize) -> Workload {
    let mut g = Generator::new(cfg);
    let target_initial = g.ws.target().root().clone();
    let source = g.ws.database(Label::new("OrganelleDB")).expect("source connected").root().clone();
    let mut updates = Vec::with_capacity(len);
    for step in 0..len {
        let u = g.next(step, cfg.pattern);
        g.ws.apply(&u).unwrap_or_else(|e| {
            panic!("generator produced an invalid update at step {step}: {u} ({e})")
        });
        updates.push(u);
    }
    Workload {
        target_name: Label::new("T"),
        target_initial,
        source_name: Label::new("OrganelleDB"),
        source,
        script: UpdateScript::from_updates(updates),
        config: cfg.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_replay_cleanly_for_every_pattern() {
        for pattern in [
            UpdatePattern::Add,
            UpdatePattern::Delete,
            UpdatePattern::Copy,
            UpdatePattern::AcMix,
            UpdatePattern::Mix,
            UpdatePattern::Real,
        ] {
            let cfg = GenConfig::for_length(pattern, 300, 42);
            let wl = generate(&cfg, 300);
            assert_eq!(wl.script.len(), 300, "{pattern}");
            let mut ws = wl.workspace();
            ws.apply_script(&wl.script).unwrap_or_else(|e| panic!("{pattern}: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::for_length(UpdatePattern::Mix, 200, 7);
        let a = generate(&cfg, 200);
        let b = generate(&cfg, 200);
        assert_eq!(a.script, b.script);
        assert_eq!(a.target_initial, b.target_initial);
        let cfg2 = GenConfig::for_length(UpdatePattern::Mix, 200, 8);
        let c = generate(&cfg2, 200);
        assert_ne!(a.script, c.script);
    }

    #[test]
    fn copy_pattern_copies_size_four_records() {
        let cfg = GenConfig::for_length(UpdatePattern::Copy, 100, 1);
        let wl = generate(&cfg, 100);
        let mut ws = wl.workspace();
        for u in &wl.script {
            match u {
                AtomicUpdate::Copy { src, .. } => {
                    let sub = ws.resolve(src).unwrap();
                    assert_eq!(sub.node_count(), 4);
                }
                other => panic!("copy pattern produced {other}"),
            }
            ws.apply(u).unwrap();
        }
    }

    #[test]
    fn deletion_patterns_restrict_victims() {
        for deletion in DeletionPattern::EXPERIMENT_3 {
            let cfg = GenConfig::for_length(UpdatePattern::Mix, 400, 11).with_deletion(deletion);
            let wl = generate(&cfg, 400);
            let mut ws = wl.workspace();
            ws.apply_script(&wl.script).unwrap_or_else(|e| panic!("{deletion}: {e}"));
        }
    }

    #[test]
    fn del_add_only_deletes_added_paths() {
        let cfg =
            GenConfig::for_length(UpdatePattern::Mix, 500, 3).with_deletion(DeletionPattern::Added);
        let wl = generate(&cfg, 500);
        let mut added: std::collections::HashSet<Path> = std::collections::HashSet::new();
        for u in &wl.script {
            match u {
                AtomicUpdate::Insert { target, label, .. } => {
                    added.insert(target.child(*label));
                }
                AtomicUpdate::Delete { target, label } => {
                    assert!(
                        added.contains(&target.child(*label)),
                        "del-add deleted a non-added path {}",
                        target.child(*label)
                    );
                }
                AtomicUpdate::Copy { .. } => {}
            }
        }
    }

    #[test]
    fn real_pattern_cycles_copy_add_delete() {
        let cfg = GenConfig::for_length(UpdatePattern::Real, 70, 5);
        let wl = generate(&cfg, 70);
        for (i, u) in wl.script.iter().enumerate() {
            match i % 7 {
                0 => assert!(matches!(u, AtomicUpdate::Copy { .. }), "step {i}: {u}"),
                1..=3 => assert!(matches!(u, AtomicUpdate::Insert { .. }), "step {i}: {u}"),
                _ => assert!(
                    matches!(u, AtomicUpdate::Delete { .. }),
                    "step {i}: {u} (delete expected; pool never dry in real pattern)"
                ),
            }
        }
    }
}
