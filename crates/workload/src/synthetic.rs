//! Synthetic curated databases.
//!
//! The paper's testbed uses a 27.3 MB copy of **MiMI** (a protein
//! interaction database) as the target and 6 MB of **OrganelleDB**
//! (protein localization) as the source. Both are record-structured
//! catalogs: a root holding many records, each a small node with a
//! handful of leaf fields. The copies in every experiment move
//! "subtrees of size four (a parent with three children)" — i.e. one
//! record.
//!
//! These generators produce trees with the same shape statistics,
//! scaled by record count, deterministically from a seed.

use cpdb_tree::{Label, Tree, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Deterministic pseudo-protein name (`ABC1`-style).
fn protein_name(rng: &mut SmallRng) -> String {
    let letters: String = (0..3).map(|_| rng.gen_range(b'A'..=b'Z') as char).collect();
    format!("{letters}{}", rng.gen_range(1..100))
}

/// An OrganelleDB-like source: `{ rec0: {acc, org, loc}, … }` — every
/// record is exactly the size-4 subtree the experiments copy.
pub fn organelle_like(records: usize, seed: u64) -> Tree {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_0001);
    let organelles = ["nucleus", "mitochondrion", "golgi", "er", "cytosol", "membrane"];
    let mut root = BTreeMap::new();
    for i in 0..records {
        let mut fields = BTreeMap::new();
        fields.insert(Label::new("name"), Tree::leaf(protein_name(&mut rng)));
        fields.insert(
            Label::new("organelle"),
            Tree::leaf(organelles[rng.gen_range(0..organelles.len())]),
        );
        fields.insert(Label::new("evidence"), Tree::leaf(rng.gen_range(1..=5i64)));
        root.insert(Label::new(&format!("rec{i}")), Tree::from_map(fields));
    }
    Tree::from_map(root)
}

/// A MiMI-like target: interaction records with molecule references and
/// a provenance-bearing annotation field, mirroring a curated protein
/// interaction catalog.
pub fn mimi_like(records: usize, seed: u64) -> Tree {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_0002);
    let mut root = BTreeMap::new();
    for i in 0..records {
        let mut fields = BTreeMap::new();
        fields.insert(Label::new("molA"), Tree::leaf(protein_name(&mut rng)));
        fields.insert(Label::new("molB"), Tree::leaf(protein_name(&mut rng)));
        fields.insert(
            Label::new("pubmed"),
            Tree::leaf(Value::Int(rng.gen_range(10_000_000..20_000_000))),
        );
        root.insert(Label::new(&format!("int{i}")), Tree::from_map(fields));
    }
    Tree::from_map(root)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(organelle_like(50, 7), organelle_like(50, 7));
        assert_eq!(mimi_like(50, 7), mimi_like(50, 7));
        assert_ne!(organelle_like(50, 7), organelle_like(50, 8));
    }

    #[test]
    fn records_are_size_four_subtrees() {
        let t = organelle_like(20, 1);
        for rec in t.children().unwrap().values() {
            assert_eq!(rec.node_count(), 4, "a parent with three children");
            assert_eq!(rec.leaf_count(), 3);
        }
        assert_eq!(t.node_count(), 1 + 20 * 4);
    }

    #[test]
    fn target_scales_with_record_count() {
        let small = mimi_like(10, 1);
        let big = mimi_like(1000, 1);
        assert_eq!(small.children().unwrap().len(), 10);
        assert_eq!(big.children().unwrap().len(), 1000);
        assert!(big.payload_bytes() > small.payload_bytes() * 50);
    }
}
