//! Parser for the concrete update-script syntax of Figure 3.
//!
//! ```text
//! (1) delete c5 from T;
//! (2) copy S1/a1/y into T/c1/y;
//! (3) insert {c2 : {}} into T;
//! (10) insert {y : 12} into T/c4;
//! ```
//!
//! Statement numbers are optional (they are checked against position when
//! present), `ins`/`del` abbreviations are accepted, `#`-to-end-of-line
//! comments are allowed, and statements are separated by `;`. The parser
//! is the inverse of `UpdateScript`'s `Display`; see the round-trip
//! property test in `tests/prop.rs`.

use crate::{AtomicUpdate, InsertContent, UpdateError, UpdateScript};
use cpdb_tree::{parse_tree, Label, Path, Tree};

/// Strips `#` comments and splits the input into statements on `;`,
/// respecting double-quoted strings (a value may contain `;` or `#`).
fn split_statements(input: &str) -> Vec<String> {
    let mut statements = Vec::new();
    let mut cur = String::new();
    let mut chars = input.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                cur.push(c);
            }
            '\\' if in_quotes => {
                cur.push(c);
                if let Some(next) = chars.next() {
                    cur.push(next);
                }
            }
            '#' if !in_quotes => {
                // Comment to end of line.
                for next in chars.by_ref() {
                    if next == '\n' {
                        break;
                    }
                }
            }
            ';' if !in_quotes => {
                statements.push(std::mem::take(&mut cur));
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    statements.push(cur);
    statements.into_iter().map(|s| s.trim().to_owned()).filter(|s| !s.is_empty()).collect()
}

/// Strips an optional leading `(n)` statement number, validating it
/// against the expected 1-based position when present.
fn strip_number(stmt: &str, position: usize) -> Result<&str, String> {
    let stmt = stmt.trim_start();
    if !stmt.starts_with('(') {
        return Ok(stmt);
    }
    let close = stmt.find(')').ok_or_else(|| "unterminated statement number".to_owned())?;
    let num: usize = stmt[1..close]
        .trim()
        .parse()
        .map_err(|_| format!("bad statement number {:?}", &stmt[1..close]))?;
    if num != position {
        return Err(format!("statement number ({num}) out of order; expected ({position})"));
    }
    Ok(stmt[close + 1..].trim_start())
}

fn parse_path(text: &str) -> Result<Path, String> {
    text.trim().parse().map_err(|e: cpdb_tree::TreeError| e.to_string())
}

fn parse_label(text: &str) -> Result<Label, String> {
    let text = text.trim();
    if text.is_empty() {
        return Err("empty label".to_owned());
    }
    if text.contains(['/', ':', ',', '"']) || text.chars().any(char::is_whitespace) {
        return Err(format!("label {text:?} contains a reserved character"));
    }
    Ok(Label::new(text))
}

/// Parses one statement body (number already stripped).
fn parse_atomic(stmt: &str) -> Result<AtomicUpdate, String> {
    let (keyword, rest) = stmt
        .split_once(char::is_whitespace)
        .ok_or_else(|| format!("incomplete statement {stmt:?}"))?;
    match keyword {
        "copy" => {
            let (src, target) = rest
                .rsplit_once(" into ")
                .ok_or_else(|| "copy statement missing 'into'".to_owned())?;
            Ok(AtomicUpdate::Copy { src: parse_path(src)?, target: parse_path(target)? })
        }
        "delete" | "del" => {
            let (label, target) = rest
                .rsplit_once(" from ")
                .ok_or_else(|| "delete statement missing 'from'".to_owned())?;
            Ok(AtomicUpdate::Delete { target: parse_path(target)?, label: parse_label(label)? })
        }
        "insert" | "ins" => {
            let (braced, target) = rest
                .rsplit_once(" into ")
                .ok_or_else(|| "insert statement missing 'into'".to_owned())?;
            let braced = braced.trim();
            let inner = braced
                .strip_prefix('{')
                .and_then(|s| s.strip_suffix('}'))
                .ok_or_else(|| format!("insert payload {braced:?} must be {{label : value}}"))?;
            let (label, content) =
                inner.split_once(':').ok_or_else(|| "insert payload missing ':'".to_owned())?;
            let content = content.trim();
            let content = match parse_tree(content) {
                Ok(t) if t.is_empty_node() => InsertContent::Empty,
                Ok(Tree::Leaf(v)) => InsertContent::Value(v),
                Ok(_) => {
                    return Err(format!(
                        "insert payload {content:?} must be the empty tree or a data value"
                    ))
                }
                Err(e) => return Err(format!("bad insert payload {content:?}: {e}")),
            };
            Ok(AtomicUpdate::Insert {
                target: parse_path(target)?,
                label: parse_label(label)?,
                content,
            })
        }
        other => Err(format!("unknown operation {other:?}")),
    }
}

/// Parses a whole update script in the syntax of Figure 3.
///
/// ```
/// use cpdb_update::parse_script;
/// let script = parse_script(
///     "(1) delete c5 from T;  # remove the stale record
///      (2) copy S1/a1/y into T/c1/y;"
/// ).unwrap();
/// assert_eq!(script.len(), 2);
/// ```
pub fn parse_script(input: &str) -> Result<UpdateScript, UpdateError> {
    let mut updates = Vec::new();
    for (i, stmt) in split_statements(input).into_iter().enumerate() {
        let statement = i + 1;
        let body = strip_number(&stmt, statement)
            .map_err(|reason| UpdateError::Parse { statement, reason })?;
        let u = parse_atomic(body).map_err(|reason| UpdateError::Parse { statement, reason })?;
        updates.push(u);
    }
    Ok(UpdateScript::from_updates(updates))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpdb_tree::Value;

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    #[test]
    fn parses_figure_3_verbatim() {
        let script = parse_script(
            "(1) delete c5 from T;
             (2) copy S1/a1/y into T/c1/y;
             (3) insert {c2 : {}} into T;
             (4) copy S1/a2 into T/c2;
             (5) insert {y : {}} into T/c2;
             (6) copy S2/b3/y into T/c2/y;
             (7) copy S1/a3 into T/c3;
             (8) insert {c4 : {}} into T;
             (9) copy S2/b2 into T/c4;
             (10) insert {y : 12} into T/c4;",
        )
        .unwrap();
        assert_eq!(script.len(), 10);
        assert_eq!(script.updates[0], AtomicUpdate::delete(p("T"), "c5"));
        assert_eq!(script.updates[3], AtomicUpdate::copy(p("S1/a2"), p("T/c2")));
        assert_eq!(script.updates[9], AtomicUpdate::insert(p("T/c4"), "y", Value::int(12)));
    }

    #[test]
    fn numbers_are_optional_but_checked() {
        assert!(parse_script("delete c5 from T; copy S1/a into T/b").is_ok());
        let err = parse_script("(2) delete c5 from T").unwrap_err();
        assert!(err.to_string().contains("out of order"), "{err}");
    }

    #[test]
    fn accepts_abbreviations_and_comments() {
        let script = parse_script(
            "# preamble comment
             ins {a : \"v\"} into T;   # trailing comment
             del a from T",
        )
        .unwrap();
        assert_eq!(script.len(), 2);
        assert_eq!(script.updates[0], AtomicUpdate::insert(p("T"), "a", Value::str("v")));
    }

    #[test]
    fn string_values_may_contain_separators() {
        let script = parse_script(r#"insert {note : "a; b # c into d"} into T"#).unwrap();
        assert_eq!(
            script.updates[0],
            AtomicUpdate::insert(p("T"), "note", Value::str("a; b # c into d"))
        );
    }

    #[test]
    fn rejects_malformed_statements() {
        for bad in [
            "explode T",
            "copy S1/a T/b",
            "delete from T",
            "insert {a : {b: 1}} into T", // structured payloads are not atomic inserts
            "insert a into T",
            "copy S1//a into T/b",
            "(x) delete a from T",
        ] {
            let err = parse_script(bad).unwrap_err();
            assert!(matches!(err, UpdateError::Parse { .. }), "should reject {bad:?}");
        }
    }

    #[test]
    fn round_trips_through_display() {
        let script = parse_script(
            "(1) delete c5 from T;
             (2) copy S1/a1/y into T/c1/y;
             (3) insert {c2 : {}} into T;
             (4) insert {y : 12} into T/c4;
             (5) insert {n : \"text value\"} into T;",
        )
        .unwrap();
        let reparsed = parse_script(&script.to_string()).unwrap();
        assert_eq!(reparsed, script);
    }
}
