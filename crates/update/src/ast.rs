//! The atomic update language.
//!
//! Section 2 of the paper models the curator's actions with three atomic
//! operations:
//!
//! ```text
//! u ::= ins {a : v} into p  |  del a from p  |  copy q into p
//! ```
//!
//! sequenced as `u1; …; un`. The inserted `v` is "either the empty tree
//! or a data value" — structure is built up one edge at a time, exactly
//! as a copy-paste editor does.

use cpdb_tree::{Label, Path, Tree, Value};
use std::fmt;

/// What an insert puts under the new edge: `{}` or a single data value.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum InsertContent {
    /// The empty tree `{}` — a fresh interior node.
    Empty,
    /// A leaf value.
    Value(Value),
}

impl InsertContent {
    /// Materializes the content as a tree.
    pub fn to_tree(&self) -> Tree {
        match self {
            InsertContent::Empty => Tree::empty(),
            InsertContent::Value(v) => Tree::Leaf(v.clone()),
        }
    }
}

impl fmt::Display for InsertContent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InsertContent::Empty => f.write_str("{}"),
            InsertContent::Value(v) => write!(f, "{v}"),
        }
    }
}

impl From<Value> for InsertContent {
    fn from(v: Value) -> InsertContent {
        InsertContent::Value(v)
    }
}

impl From<i64> for InsertContent {
    fn from(i: i64) -> InsertContent {
        InsertContent::Value(Value::Int(i))
    }
}

impl From<&str> for InsertContent {
    fn from(s: &str) -> InsertContent {
        InsertContent::Value(Value::str(s))
    }
}

/// One atomic update. Paths are database-qualified (`T/c2`, `S1/a2`).
///
/// Inserts and deletes may only address the target database; a copy may
/// draw its source from any database (including the target itself) but
/// must paste into the target. The [`crate::Workspace`] enforces this.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum AtomicUpdate {
    /// `ins {label : content} into target`: add a fresh edge under the
    /// node at `target`.
    Insert {
        /// Node under which the new edge is added.
        target: Path,
        /// The new edge's label.
        label: Label,
        /// `{}` or a data value.
        content: InsertContent,
    },
    /// `del label from target`: remove the edge `label` (and its whole
    /// subtree) under the node at `target`.
    Delete {
        /// Node under which the edge is removed.
        target: Path,
        /// The edge to remove.
        label: Label,
    },
    /// `copy src into target`: replace (or create) the subtree at
    /// `target` with a copy of the subtree at `src`.
    Copy {
        /// Where the data comes from — any database.
        src: Path,
        /// Where it is pasted — in the target database.
        target: Path,
    },
}

impl AtomicUpdate {
    /// Convenience constructor for `ins {label : content} into target`.
    pub fn insert(
        target: Path,
        label: impl Into<Label>,
        content: impl Into<InsertContent>,
    ) -> Self {
        AtomicUpdate::Insert { target, label: label.into(), content: content.into() }
    }

    /// Convenience constructor for `del label from target`.
    pub fn delete(target: Path, label: impl Into<Label>) -> Self {
        AtomicUpdate::Delete { target, label: label.into() }
    }

    /// Convenience constructor for `copy src into target`.
    pub fn copy(src: Path, target: Path) -> Self {
        AtomicUpdate::Copy { src, target }
    }

    /// The path in the *target* database this update writes to: the new
    /// edge for inserts, the removed edge for deletes, the paste location
    /// for copies.
    pub fn written_path(&self) -> Path {
        match self {
            AtomicUpdate::Insert { target, label, .. } => target.child(*label),
            AtomicUpdate::Delete { target, label } => target.child(*label),
            AtomicUpdate::Copy { target, .. } => target.clone(),
        }
    }
}

impl fmt::Display for AtomicUpdate {
    /// Renders in the concrete syntax of Figure 3:
    /// `insert {c2 : {}} into T`, `delete c5 from T`,
    /// `copy S1/a1/y into T/c1/y`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtomicUpdate::Insert { target, label, content } => {
                write!(f, "insert {{{label} : {content}}} into {target}")
            }
            AtomicUpdate::Delete { target, label } => {
                write!(f, "delete {label} from {target}")
            }
            AtomicUpdate::Copy { src, target } => {
                write!(f, "copy {src} into {target}")
            }
        }
    }
}

/// A sequence `u1; …; un` of atomic updates.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct UpdateScript {
    /// The updates, in execution order.
    pub updates: Vec<AtomicUpdate>,
}

impl UpdateScript {
    /// An empty script.
    pub fn new() -> UpdateScript {
        UpdateScript::default()
    }

    /// Wraps a vector of updates.
    pub fn from_updates(updates: Vec<AtomicUpdate>) -> UpdateScript {
        UpdateScript { updates }
    }

    /// Number of atomic updates (`|U|` in the paper's storage bounds).
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// `true` iff the script is empty.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Appends an update.
    pub fn push(&mut self, u: AtomicUpdate) {
        self.updates.push(u);
    }

    /// Iterates over the updates.
    pub fn iter(&self) -> std::slice::Iter<'_, AtomicUpdate> {
        self.updates.iter()
    }
}

impl fmt::Display for UpdateScript {
    /// One numbered statement per line, exactly like Figure 3:
    ///
    /// ```text
    /// (1) delete c5 from T;
    /// (2) copy S1/a1/y into T/c1/y;
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, u) in self.updates.iter().enumerate() {
            writeln!(f, "({}) {};", i + 1, u)?;
        }
        Ok(())
    }
}

impl IntoIterator for UpdateScript {
    type Item = AtomicUpdate;
    type IntoIter = std::vec::IntoIter<AtomicUpdate>;
    fn into_iter(self) -> Self::IntoIter {
        self.updates.into_iter()
    }
}

impl<'a> IntoIterator for &'a UpdateScript {
    type Item = &'a AtomicUpdate;
    type IntoIter = std::slice::Iter<'a, AtomicUpdate>;
    fn into_iter(self) -> Self::IntoIter {
        self.updates.iter()
    }
}

impl FromIterator<AtomicUpdate> for UpdateScript {
    fn from_iter<I: IntoIterator<Item = AtomicUpdate>>(iter: I) -> UpdateScript {
        UpdateScript { updates: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    #[test]
    fn display_matches_figure_3_syntax() {
        let u = AtomicUpdate::delete(p("T"), "c5");
        assert_eq!(u.to_string(), "delete c5 from T");
        let u = AtomicUpdate::copy(p("S1/a1/y"), p("T/c1/y"));
        assert_eq!(u.to_string(), "copy S1/a1/y into T/c1/y");
        let u = AtomicUpdate::insert(p("T"), "c2", InsertContent::Empty);
        assert_eq!(u.to_string(), "insert {c2 : {}} into T");
        let u = AtomicUpdate::insert(p("T/c4"), "y", 12);
        assert_eq!(u.to_string(), "insert {y : 12} into T/c4");
    }

    #[test]
    fn script_display_numbers_lines() {
        let script = UpdateScript::from_updates(vec![
            AtomicUpdate::delete(p("T"), "c5"),
            AtomicUpdate::copy(p("S1/a1/y"), p("T/c1/y")),
        ]);
        assert_eq!(script.to_string(), "(1) delete c5 from T;\n(2) copy S1/a1/y into T/c1/y;\n");
    }

    #[test]
    fn written_path() {
        assert_eq!(AtomicUpdate::delete(p("T"), "c5").written_path(), p("T/c5"));
        assert_eq!(AtomicUpdate::insert(p("T/c4"), "y", 12).written_path(), p("T/c4/y"));
        assert_eq!(AtomicUpdate::copy(p("S1/a2"), p("T/c2")).written_path(), p("T/c2"));
    }
}
