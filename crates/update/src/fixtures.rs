//! The paper's running example (Figures 3 and 4) as reusable fixtures.
//!
//! Section 2 walks one copy-paste transaction through two source
//! databases and a target; Figure 5 then derives its provenance tables
//! under all four storage strategies. Tests and examples throughout the
//! workspace check against these exact structures.

use crate::{parse_script, UpdateScript, Workspace};
use cpdb_tree::{tree, Database, Tree};

/// The source tree `S1` of Figure 4.
pub fn s1() -> Tree {
    tree! {
        "a1" => { "x" => 1, "y" => 2 },
        "a2" => { "x" => 3 },
        "a3" => { "x" => 7, "y" => 5 },
    }
}

/// The source tree `S2` of Figure 4.
pub fn s2() -> Tree {
    tree! {
        "b1" => { "x" => 1, "y" => 2 },
        "b2" => { "x" => 4 },
        "b3" => { "x" => 7, "y" => 6 },
    }
}

/// The initial target tree `T` of Figure 4.
pub fn t_initial() -> Tree {
    tree! {
        "c1" => { "x" => 1, "y" => 3 },
        "c5" => { "x" => 9, "y" => 7 },
    }
}

/// The final target tree `T′` of Figure 4.
pub fn t_final() -> Tree {
    tree! {
        "c1" => { "x" => 1, "y" => 2 },
        "c2" => { "x" => 3, "y" => 6 },
        "c3" => { "x" => 7, "y" => 5 },
        "c4" => { "x" => 4, "y" => 12 },
    }
}

/// A workspace holding `T` (initial) with sources `S1`, `S2`.
pub fn figure4_workspace() -> Workspace {
    Workspace::new(Database::new("T", t_initial()))
        .with_source(Database::new("S1", s1()))
        .with_source(Database::new("S2", s2()))
}

/// The ten-step update script of Figure 3, verbatim.
pub fn figure3_script() -> UpdateScript {
    parse_script(
        "(1) delete c5 from T;
         (2) copy S1/a1/y into T/c1/y;
         (3) insert {c2 : {}} into T;
         (4) copy S1/a2 into T/c2;
         (5) insert {y : {}} into T/c2;
         (6) copy S2/b3/y into T/c2/y;
         (7) copy S1/a3 into T/c3;
         (8) insert {c4 : {}} into T;
         (9) copy S2/b2 into T/c4;
         (10) insert {y : 12} into T/c4;",
    )
    .expect("Figure 3 script is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_replays_to_t_final() {
        let mut ws = figure4_workspace();
        ws.apply_script(&figure3_script()).unwrap();
        assert_eq!(ws.target().root(), &t_final());
    }
}
