//! Errors raised while applying or parsing updates.

use cpdb_tree::{Label, Path, TreeError};
use std::fmt;

/// Failure of an update operation or of script parsing.
#[derive(Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// The underlying tree operation failed (missing path, duplicate
    /// edge, …) — the points where `[[U]]` is undefined.
    Tree(TreeError),
    /// A path did not start with a database name.
    UnqualifiedPath {
        /// The offending path.
        path: Path,
    },
    /// A path named a database the workspace doesn't know.
    UnknownDatabase {
        /// The unknown name.
        name: Label,
    },
    /// A write addressed a database other than the target. The paper:
    /// "Insertions, copies, and deletes can only be performed in a
    /// subtree of the target database T."
    NotInTarget {
        /// The path that was written.
        path: Path,
        /// The target database's name.
        target: Label,
    },
    /// An update script failed to parse.
    Parse {
        /// 1-based statement number.
        statement: usize,
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::Tree(e) => write!(f, "{e}"),
            UpdateError::UnqualifiedPath { path } => {
                write!(f, "path {path} does not name a database")
            }
            UpdateError::UnknownDatabase { name } => {
                write!(f, "unknown database {name}")
            }
            UpdateError::NotInTarget { path, target } => {
                write!(f, "updates may only write to the target database {target}, not {path}")
            }
            UpdateError::Parse { statement, reason } => {
                write!(f, "parse error in statement {statement}: {reason}")
            }
        }
    }
}

impl fmt::Debug for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for UpdateError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UpdateError::Tree(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TreeError> for UpdateError {
    fn from(e: TreeError) -> UpdateError {
        UpdateError::Tree(e)
    }
}
