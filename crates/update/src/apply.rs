//! The update semantics `[[U]]`.
//!
//! Section 2 gives each operation a meaning as a function on trees:
//!
//! ```text
//! [[ins {a : v} into p]](t) = t[p := (t.p ⊎ {a : v})]
//! [[del a from p]](t)       = t[p := (t.p − a)]
//! [[copy q into p]](t)      = t[p := t.q]
//! [[U ; U′]](t)             = [[U′]]([[U]](t))
//! ```
//!
//! and restricts writes to the target database: "Insertions, copies, and
//! deletes can only be performed in a subtree of the target database T."
//!
//! One clarification is needed to execute the paper's own Figure 3: step
//! (7) is `copy S1/a3 into T/c3` with no prior insert of `c3`, and the
//! figure shows `c3` appearing in `T′`. So `copy q into p` *creates* the
//! final edge of `p` when it is absent, provided `p`'s parent exists —
//! this is exactly what a paste into a fresh position does in the CPDB
//! editor (`pasteNode` "inserts node X as a child of the specified
//! node"). When `p` exists it is replaced, per `t[p := t.q]`.

use crate::{AtomicUpdate, UpdateError, UpdateScript};
use cpdb_tree::{Database, Label, Path, Tree, TreeError};
use std::collections::BTreeMap;

/// The observable effect of one applied update, carrying everything a
/// provenance tracker needs: which paths were written, and the subtrees
/// that moved (so naïve provenance can enumerate every touched node).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Effect {
    /// An edge was inserted; `path` is the new edge's qualified path.
    Inserted {
        /// Qualified path of the new node.
        path: Path,
        /// What was inserted (`{}` or a leaf).
        subtree: Tree,
    },
    /// An edge was deleted; `subtree` is what was removed.
    Deleted {
        /// Qualified path of the removed node.
        path: Path,
        /// The entire removed subtree.
        subtree: Tree,
    },
    /// A subtree was copied from `src` over (or into) `target`.
    Copied {
        /// Qualified source path (any database).
        src: Path,
        /// Qualified paste path (target database).
        target: Path,
        /// The copied subtree, as pasted.
        subtree: Tree,
        /// The subtree that was overwritten, if the paste replaced one.
        replaced: Option<Tree>,
    },
}

impl Effect {
    /// The qualified target-database path this effect wrote.
    pub fn written_path(&self) -> &Path {
        match self {
            Effect::Inserted { path, .. } => path,
            Effect::Deleted { path, .. } => path,
            Effect::Copied { target, .. } => target,
        }
    }
}

/// A target database plus the read-only source databases visible to the
/// curator — the editing universe of Figure 2.
#[derive(Clone, Debug)]
pub struct Workspace {
    target: Database,
    sources: BTreeMap<Label, Database>,
}

impl Workspace {
    /// Creates a workspace around a target database.
    pub fn new(target: Database) -> Workspace {
        Workspace { target, sources: BTreeMap::new() }
    }

    /// Adds (or replaces) a read-only source database.
    pub fn add_source(&mut self, source: Database) -> &mut Self {
        self.sources.insert(source.name(), source);
        self
    }

    /// Builder-style variant of [`Workspace::add_source`].
    pub fn with_source(mut self, source: Database) -> Workspace {
        self.add_source(source);
        self
    }

    /// The target database.
    pub fn target(&self) -> &Database {
        &self.target
    }

    /// Mutable access to the target database (used by tests and by the
    /// editor when loading a new version).
    pub fn target_mut(&mut self) -> &mut Database {
        &mut self.target
    }

    /// The source databases, by name.
    pub fn sources(&self) -> impl Iterator<Item = &Database> {
        self.sources.values()
    }

    /// Looks up any database (target or source) by name.
    pub fn database(&self, name: Label) -> Option<&Database> {
        if name == self.target.name() {
            Some(&self.target)
        } else {
            self.sources.get(&name)
        }
    }

    /// Resolves a qualified path against whichever database it names.
    pub fn resolve(&self, path: &Path) -> Result<&Tree, UpdateError> {
        let first =
            path.first().ok_or_else(|| UpdateError::UnqualifiedPath { path: path.clone() })?;
        let db = self.database(first).ok_or(UpdateError::UnknownDatabase { name: first })?;
        db.get(path).map_err(UpdateError::Tree)
    }

    /// Checks that `path` addresses the target database and returns the
    /// root-relative remainder.
    fn target_relative(&self, path: &Path) -> Result<Path, UpdateError> {
        self.target.relative(path).map_err(|_| UpdateError::NotInTarget {
            path: path.clone(),
            target: self.target.name(),
        })
    }

    /// Applies one atomic update, returning its [`Effect`].
    ///
    /// The workspace is unchanged if an error is returned.
    pub fn apply(&mut self, u: &AtomicUpdate) -> Result<Effect, UpdateError> {
        match u {
            AtomicUpdate::Insert { target, label, content } => {
                let rel = self.target_relative(target)?;
                let subtree = content.to_tree();
                self.target
                    .root_mut()
                    .insert_edge(&rel, *label, subtree.clone())
                    .map_err(|e| requalify(e, target))?;
                Ok(Effect::Inserted { path: target.child(*label), subtree })
            }
            AtomicUpdate::Delete { target, label } => {
                let rel = self.target_relative(target)?;
                let removed = self
                    .target
                    .root_mut()
                    .delete_edge(&rel, *label)
                    .map_err(|e| requalify(e, target))?;
                Ok(Effect::Deleted { path: target.child(*label), subtree: removed })
            }
            AtomicUpdate::Copy { src, target } => {
                let subtree = self.resolve(src)?.clone();
                let rel = self.target_relative(target)?;
                if self.target.root().contains(&rel) {
                    let replaced = self
                        .target
                        .root_mut()
                        .replace(&rel, subtree.clone())
                        .map_err(|e| requalify(e, target))?;
                    Ok(Effect::Copied {
                        src: src.clone(),
                        target: target.clone(),
                        subtree,
                        replaced: Some(replaced),
                    })
                } else {
                    // Paste into a fresh position: the final edge is
                    // created under the (existing) parent node.
                    let (parent, label) = match (rel.parent(), rel.last()) {
                        (Some(parent), Some(label)) => (parent, label),
                        _ => {
                            return Err(UpdateError::Tree(TreeError::PathNotFound {
                                path: target.clone(),
                            }))
                        }
                    };
                    self.target
                        .root_mut()
                        .insert_edge(&parent, label, subtree.clone())
                        .map_err(|e| requalify(e, target))?;
                    Ok(Effect::Copied {
                        src: src.clone(),
                        target: target.clone(),
                        subtree,
                        replaced: None,
                    })
                }
            }
        }
    }

    /// Applies `u1; …; un`, stopping at the first error.
    ///
    /// On error the target may reflect a prefix of the script (the paper's
    /// sequencing `[[U;U′]] = [[U′]] ∘ [[U]]` has no rollback; transactional
    /// behaviour lives in the provenance layer).
    pub fn apply_script(&mut self, script: &UpdateScript) -> Result<Vec<Effect>, UpdateError> {
        let mut effects = Vec::with_capacity(script.len());
        for u in script {
            effects.push(self.apply(u)?);
        }
        Ok(effects)
    }
}

/// Tree errors from root-relative operations carry root-relative paths;
/// re-qualify them so messages show full `T/...` paths.
fn requalify(e: TreeError, qualified_target: &Path) -> UpdateError {
    let db = Path::single(qualified_target.first().expect("qualified path"));
    UpdateError::Tree(match e {
        TreeError::PathNotFound { path } => TreeError::PathNotFound { path: db.join(&path) },
        TreeError::ThroughLeaf { at } => TreeError::ThroughLeaf { at: db.join(&at) },
        TreeError::DuplicateEdge { at, label } => {
            TreeError::DuplicateEdge { at: db.join(&at), label }
        }
        TreeError::EdgeNotFound { at, label } => {
            TreeError::EdgeNotFound { at: db.join(&at), label }
        }
        TreeError::NotATree { at } => TreeError::NotATree { at: db.join(&at) },
        other => other,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    use crate::fixtures::{figure3_script, figure4_workspace};
    use cpdb_tree::tree;

    #[test]
    fn figure3_produces_figure4_t_prime() {
        let mut ws = figure4_workspace();
        let effects = ws.apply_script(&figure3_script()).unwrap();
        assert_eq!(effects.len(), 10);

        // T′ from Figure 4: c1 {x:1, y:2}, c2 {x:3, y:6}, c3 {x:7, y:5},
        // c4 {x:4, y:12}. (c2's y comes from S2/b3/y = 6; c4 is S2/b2
        // plus the freshly inserted y = 12.)
        let expected = tree! {
            "c1" => { "x" => 1, "y" => 2 },
            "c2" => { "x" => 3, "y" => 6 },
            "c3" => { "x" => 7, "y" => 5 },
            "c4" => { "x" => 4, "y" => 12 },
        };
        assert_eq!(ws.target().root(), &expected);
    }

    #[test]
    fn insert_fails_on_duplicate_edge() {
        let mut ws = figure4_workspace();
        let err =
            ws.apply(&AtomicUpdate::insert(p("T"), "c1", crate::InsertContent::Empty)).unwrap_err();
        assert!(err.to_string().contains("already exists"), "{err}");
    }

    #[test]
    fn delete_fails_on_missing_edge() {
        let mut ws = figure4_workspace();
        let err = ws.apply(&AtomicUpdate::delete(p("T"), "zz")).unwrap_err();
        assert!(err.to_string().contains("no edge"), "{err}");
    }

    #[test]
    fn copy_requires_existing_parent() {
        let mut ws = figure4_workspace();
        let err = ws.apply(&AtomicUpdate::copy(p("S1/a1"), p("T/nowhere/deep"))).unwrap_err();
        assert!(matches!(err, UpdateError::Tree(TreeError::PathNotFound { .. })), "{err}");
    }

    #[test]
    fn copy_within_target_is_allowed() {
        let mut ws = figure4_workspace();
        let effect = ws.apply(&AtomicUpdate::copy(p("T/c1"), p("T/c9"))).unwrap();
        match effect {
            Effect::Copied { replaced: None, .. } => {}
            other => panic!("expected fresh paste, got {other:?}"),
        }
        assert_eq!(ws.target().get(&p("T/c9/x")).unwrap(), &Tree::leaf(1));
    }

    #[test]
    fn writes_outside_target_are_rejected() {
        let mut ws = figure4_workspace();
        let err = ws.apply(&AtomicUpdate::copy(p("T/c1"), p("S1/a1"))).unwrap_err();
        assert!(matches!(err, UpdateError::NotInTarget { .. }), "{err}");
        let err = ws
            .apply(&AtomicUpdate::insert(p("S1"), "zz", crate::InsertContent::Empty))
            .unwrap_err();
        assert!(matches!(err, UpdateError::NotInTarget { .. }), "{err}");
    }

    #[test]
    fn unknown_database_is_reported() {
        let mut ws = figure4_workspace();
        let err = ws.apply(&AtomicUpdate::copy(p("S9/a"), p("T/c9"))).unwrap_err();
        assert!(matches!(err, UpdateError::UnknownDatabase { .. }), "{err}");
    }

    #[test]
    fn effects_carry_subtrees() {
        let mut ws = figure4_workspace();
        let e = ws.apply(&AtomicUpdate::delete(p("T"), "c5")).unwrap();
        match e {
            Effect::Deleted { path, subtree } => {
                assert_eq!(path, p("T/c5"));
                assert_eq!(subtree.node_count(), 3);
            }
            other => panic!("{other:?}"),
        }
        let e = ws.apply(&AtomicUpdate::copy(p("S1/a1"), p("T/c1"))).unwrap();
        match e {
            Effect::Copied { subtree, replaced, .. } => {
                assert_eq!(subtree.node_count(), 3);
                assert!(replaced.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn failed_apply_leaves_workspace_unchanged() {
        let mut ws = figure4_workspace();
        let before = ws.target().root().clone();
        let _ = ws.apply(&AtomicUpdate::copy(p("S1/zzz"), p("T/c1"))).unwrap_err();
        assert_eq!(ws.target().root(), &before);
    }
}
