//! # cpdb-update — the copy-paste update language
//!
//! The atomic update language of Section 2 of Buneman, Chapman & Cheney,
//! *Provenance Management in Curated Databases* (SIGMOD 2006), with its
//! formal semantics `[[U]]` and the concrete syntax of Figure 3.
//!
//! ```text
//! u ::= ins {a : v} into p  |  del a from p  |  copy q into p
//! ```
//!
//! A [`Workspace`] holds the writable target database and the read-only
//! sources; applying an update yields an [`Effect`] describing exactly
//! what moved — the raw material for provenance tracking in `cpdb-core`.
//!
//! ```
//! use cpdb_tree::{tree, Database};
//! use cpdb_update::{parse_script, Workspace};
//!
//! let mut ws = Workspace::new(Database::new("T", tree! {}))
//!     .with_source(Database::new("S1", tree! { "a" => { "x" => 1 } }));
//! let script = parse_script("copy S1/a into T/mine").unwrap();
//! ws.apply_script(&script).unwrap();
//! assert_eq!(ws.target().root().to_string(), "{mine: {x: 1}}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod apply;
mod ast;
mod error;
pub mod fixtures;
mod parse;

pub use apply::{Effect, Workspace};
pub use ast::{AtomicUpdate, InsertContent, UpdateScript};
pub use error::UpdateError;
pub use parse::parse_script;
