//! Property-based tests: parser round-trips and semantic laws.

use cpdb_tree::{Label, Path, Tree, Value};
use cpdb_update::{parse_script, AtomicUpdate, InsertContent, UpdateScript, Workspace};
use proptest::prelude::*;

fn arb_label() -> impl Strategy<Value = Label> {
    prop_oneof!["[a-z][a-z0-9_.]{0,6}", "[A-Z]{1,2}[0-9]{1,4}", "[a-z]{1,4}\\{[0-9]{1,2}\\}",]
        .prop_map(|s| Label::new(&s))
}

fn arb_path() -> impl Strategy<Value = Path> {
    proptest::collection::vec(arb_label(), 1..5).prop_map(Path::from_labels)
}

fn arb_content() -> impl Strategy<Value = InsertContent> {
    prop_oneof![
        Just(InsertContent::Empty),
        any::<i64>().prop_map(|i| InsertContent::Value(Value::Int(i))),
        "[ -~]{0,10}".prop_map(|s| InsertContent::Value(Value::str(s))),
    ]
}

fn arb_update() -> impl Strategy<Value = AtomicUpdate> {
    prop_oneof![
        (arb_path(), arb_label(), arb_content())
            .prop_map(|(target, label, content)| AtomicUpdate::Insert { target, label, content }),
        (arb_path(), arb_label())
            .prop_map(|(target, label)| AtomicUpdate::Delete { target, label }),
        (arb_path(), arb_path()).prop_map(|(src, target)| AtomicUpdate::Copy { src, target }),
    ]
}

fn arb_script() -> impl Strategy<Value = UpdateScript> {
    proptest::collection::vec(arb_update(), 0..20).prop_map(UpdateScript::from_updates)
}

proptest! {
    /// `parse(print(script)) == script` for arbitrary scripts, including
    /// string values full of separators.
    #[test]
    fn script_round_trips(script in arb_script()) {
        let printed = script.to_string();
        let reparsed = parse_script(&printed).expect("canonical output must parse");
        prop_assert_eq!(reparsed, script);
    }

    /// Applying a script never corrupts the sources, and a failed step
    /// leaves the target exactly as the successful prefix left it.
    #[test]
    fn sources_are_never_mutated(script in arb_script()) {
        use cpdb_tree::{tree, Database};
        let s1 = tree! { "a" => { "x" => 1 } };
        let mut ws = Workspace::new(Database::new("T", tree! { "c" => { "x" => 2 } }))
            .with_source(Database::new("S1", s1.clone()));
        let _ = ws.apply_script(&script); // errors are fine
        let s1_after = ws.database(Label::new("S1")).unwrap().root().clone();
        prop_assert_eq!(s1_after, s1);
    }

    /// Copy semantics: after a successful `copy q into p`, `t.p` equals
    /// the source subtree at copy time.
    #[test]
    fn copy_establishes_equality(label in arb_label()) {
        use cpdb_tree::{tree, Database};
        let mut ws = Workspace::new(Database::new("T", tree! {}))
            .with_source(Database::new("S", tree! { "a" => { "x" => 1, "y" => "v" } }));
        let src: Path = "S/a".parse().unwrap();
        let target = Path::single("T").child(label);
        ws.apply(&AtomicUpdate::copy(src.clone(), target.clone())).unwrap();
        let expected: Tree = tree! { "x" => 1, "y" => "v" };
        prop_assert_eq!(ws.target().get(&target).unwrap(), &expected);
    }
}
