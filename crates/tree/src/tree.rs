//! Unordered, edge-labeled trees with values at the leaves.
//!
//! This is the data model of Section 2: a tree is either a leaf holding
//! a value from `D`, or an interior node `{a1: t1, …, an: tn}` whose
//! outgoing edges carry distinct labels. The primitive operations are
//! exactly the ones the update semantics `[[U]]` needs:
//!
//! * `t.p` — [`Tree::get`] / [`Tree::subtree`];
//! * `t[p := t']` — [`Tree::replace`];
//! * `t ⊎ {a: v}` — [`Tree::insert_edge`] (fails on a shared edge name);
//! * `t − a` — [`Tree::delete_edge`] (fails if the edge is absent).

use crate::{Label, Path, TreeError, Value};
use std::collections::BTreeMap;
use std::fmt;

/// An unordered edge-labeled tree; values live only at leaves.
///
/// Children are kept in a `BTreeMap` ordered by label spelling, so
/// traversal order is deterministic and matches the order the paper's
/// figures list siblings in.
///
/// ```
/// use cpdb_tree::{tree, Tree, Value};
/// let t: Tree = tree! { "x" => 1, "y" => { "z" => "hello" } };
/// assert_eq!(t.node_count(), 4); // root, x, y, z
/// assert_eq!(
///     t.get(&"y/z".parse().unwrap()).unwrap().as_value(),
///     Some(&Value::str("hello"))
/// );
/// ```
#[derive(Clone, PartialEq, Eq)]
pub enum Tree {
    /// A leaf holding a data value.
    Leaf(Value),
    /// An interior node; may be empty (`{}`).
    Node(BTreeMap<Label, Tree>),
}

impl Tree {
    /// The empty tree `{}`.
    pub fn empty() -> Tree {
        Tree::Node(BTreeMap::new())
    }

    /// A leaf holding `value`.
    pub fn leaf(value: impl Into<Value>) -> Tree {
        Tree::Leaf(value.into())
    }

    /// Builds an interior node from `(label, subtree)` pairs.
    ///
    /// Later duplicates overwrite earlier ones; use [`Tree::insert_edge`]
    /// when the paper's failing `⊎` semantics is wanted.
    pub fn node(pairs: impl IntoIterator<Item = (Label, Tree)>) -> Tree {
        Tree::Node(pairs.into_iter().collect())
    }

    /// Builds an interior node directly from a child map.
    pub fn from_map(children: BTreeMap<Label, Tree>) -> Tree {
        Tree::Node(children)
    }

    /// `true` iff this is a leaf.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Tree::Leaf(_))
    }

    /// `true` iff this is `{}`.
    pub fn is_empty_node(&self) -> bool {
        matches!(self, Tree::Node(m) if m.is_empty())
    }

    /// The leaf value, if this is a leaf.
    pub fn as_value(&self) -> Option<&Value> {
        match self {
            Tree::Leaf(v) => Some(v),
            Tree::Node(_) => None,
        }
    }

    /// The child map, if this is an interior node.
    pub fn children(&self) -> Option<&BTreeMap<Label, Tree>> {
        match self {
            Tree::Leaf(_) => None,
            Tree::Node(m) => Some(m),
        }
    }

    /// Immediate child under `label`.
    pub fn child(&self, label: Label) -> Option<&Tree> {
        self.children().and_then(|m| m.get(&label))
    }

    /// `t.p`: the subtree at `path`, or `None`.
    pub fn get(&self, path: &Path) -> Option<&Tree> {
        let mut cur = self;
        for seg in path.iter() {
            cur = cur.child(seg)?;
        }
        Some(cur)
    }

    /// Mutable variant of [`Tree::get`].
    pub fn get_mut(&mut self, path: &Path) -> Option<&mut Tree> {
        let mut cur = self;
        for seg in path.iter() {
            cur = match cur {
                Tree::Leaf(_) => return None,
                Tree::Node(m) => m.get_mut(&seg)?,
            };
        }
        Some(cur)
    }

    /// `t.p` with a typed error instead of `None`.
    pub fn subtree(&self, path: &Path) -> Result<&Tree, TreeError> {
        self.get(path).ok_or_else(|| TreeError::PathNotFound { path: path.clone() })
    }

    /// `true` iff `path` resolves to a node.
    pub fn contains(&self, path: &Path) -> bool {
        self.get(path).is_some()
    }

    /// `t[p := t.p ⊎ {label: child}]`: inserts a new edge under the node
    /// at `at`.
    ///
    /// Fails with [`TreeError::PathNotFound`] if `at` is absent, with
    /// [`TreeError::NotATree`] if `at` is a leaf, and with
    /// [`TreeError::DuplicateEdge`] if the label is already present —
    /// precisely where the paper's `⊎` is undefined.
    pub fn insert_edge(&mut self, at: &Path, label: Label, child: Tree) -> Result<(), TreeError> {
        let node = self.get_mut(at).ok_or_else(|| TreeError::PathNotFound { path: at.clone() })?;
        match node {
            Tree::Leaf(_) => Err(TreeError::NotATree { at: at.clone() }),
            Tree::Node(m) => {
                if m.contains_key(&label) {
                    return Err(TreeError::DuplicateEdge { at: at.clone(), label });
                }
                m.insert(label, child);
                Ok(())
            }
        }
    }

    /// `t[p := t.p − label]`: deletes the edge `label` (and its subtree)
    /// under the node at `at`, returning the removed subtree.
    ///
    /// Fails with [`TreeError::EdgeNotFound`] if the edge is absent, as
    /// `t − a` is undefined there.
    pub fn delete_edge(&mut self, at: &Path, label: Label) -> Result<Tree, TreeError> {
        let node = self.get_mut(at).ok_or_else(|| TreeError::PathNotFound { path: at.clone() })?;
        match node {
            Tree::Leaf(_) => Err(TreeError::NotATree { at: at.clone() }),
            Tree::Node(m) => {
                m.remove(&label).ok_or_else(|| TreeError::EdgeNotFound { at: at.clone(), label })
            }
        }
    }

    /// `t[p := new]`: replaces the subtree at `at`, returning the old
    /// subtree. Fails if `at` is not present (the paper's side condition).
    pub fn replace(&mut self, at: &Path, new: Tree) -> Result<Tree, TreeError> {
        let node = self.get_mut(at).ok_or_else(|| TreeError::PathNotFound { path: at.clone() })?;
        Ok(std::mem::replace(node, new))
    }

    /// General union `t ⊎ u`: fails on any shared top-level edge name, or
    /// if either side is a leaf.
    pub fn union(self, other: Tree) -> Result<Tree, TreeError> {
        match (self, other) {
            (Tree::Node(mut a), Tree::Node(b)) => {
                for (label, sub) in b {
                    if a.contains_key(&label) {
                        return Err(TreeError::DuplicateEdge { at: Path::epsilon(), label });
                    }
                    a.insert(label, sub);
                }
                Ok(Tree::Node(a))
            }
            _ => Err(TreeError::NotATree { at: Path::epsilon() }),
        }
    }

    /// Number of nodes, counting this root. The paper's "subtrees of size
    /// four" are a parent with three leaf children: `node_count() == 4`.
    pub fn node_count(&self) -> usize {
        match self {
            Tree::Leaf(_) => 1,
            Tree::Node(m) => 1 + m.values().map(Tree::node_count).sum::<usize>(),
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        match self {
            Tree::Leaf(_) => 1,
            Tree::Node(m) => m.values().map(Tree::leaf_count).sum(),
        }
    }

    /// Length of the longest root-to-node path.
    pub fn depth(&self) -> usize {
        match self {
            Tree::Leaf(_) => 0,
            Tree::Node(m) => m.values().map(|t| 1 + t.depth()).max().unwrap_or(0),
        }
    }

    /// Total payload bytes across all leaves (for storage reporting).
    pub fn payload_bytes(&self) -> usize {
        match self {
            Tree::Leaf(v) => v.payload_bytes(),
            Tree::Node(m) => m.values().map(Tree::payload_bytes).sum(),
        }
    }

    /// Visits every node in deterministic preorder (root first, children
    /// by label spelling), passing each node's path relative to `base`.
    pub fn walk<'t>(&'t self, base: &Path, f: &mut impl FnMut(&Path, &'t Tree)) {
        f(base, self);
        if let Tree::Node(m) = self {
            for (label, sub) in m {
                sub.walk(&base.child(*label), f);
            }
        }
    }

    /// The paths of all nodes in this tree (preorder), prefixed by `base`.
    /// The root itself appears first, as `base`.
    ///
    /// Naïve provenance stores one record per element of this list when a
    /// subtree is copied or deleted (Section 2.1.1).
    pub fn all_paths(&self, base: &Path) -> Vec<Path> {
        let mut out = Vec::with_capacity(self.node_count());
        self.walk(base, &mut |p, _| out.push(p.clone()));
        out
    }

    /// Iterates `(path, value)` for every leaf, paths relative to `base`.
    pub fn leaves(&self, base: &Path) -> Vec<(Path, Value)> {
        let mut out = Vec::with_capacity(self.leaf_count());
        self.walk(base, &mut |p, t| {
            if let Tree::Leaf(v) = t {
                out.push((p.clone(), v.clone()));
            }
        });
        out
    }
}

impl Default for Tree {
    fn default() -> Tree {
        Tree::empty()
    }
}

impl fmt::Display for Tree {
    /// Canonical literal syntax: `{a: 1, b: {c: "x"}}`, children sorted
    /// by label spelling. Round-trips through [`crate::parse_tree`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tree::Leaf(v) => write!(f, "{v}"),
            Tree::Node(m) => {
                f.write_str("{")?;
                for (i, (label, sub)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    crate::parse::write_label(f, *label)?;
                    write!(f, ": {sub}")?;
                }
                f.write_str("}")
            }
        }
    }
}

impl fmt::Debug for Tree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<Value> for Tree {
    fn from(v: Value) -> Tree {
        Tree::Leaf(v)
    }
}

impl From<i64> for Tree {
    fn from(i: i64) -> Tree {
        Tree::Leaf(Value::Int(i))
    }
}

impl From<&str> for Tree {
    fn from(s: &str) -> Tree {
        Tree::Leaf(Value::str(s))
    }
}

/// A named database whose contents form a tree.
///
/// Paths in provenance records are *database-qualified*: their first
/// segment names the database (`T/c1/y`, `S1/a2/x`). A `Database` resolves
/// such qualified paths against its root tree.
#[derive(Clone, PartialEq, Eq)]
pub struct Database {
    name: Label,
    root: Tree,
}

impl Database {
    /// Creates a database called `name` with the given contents.
    pub fn new(name: impl Into<Label>, root: Tree) -> Database {
        Database { name: name.into(), root }
    }

    /// The database's name — the first segment of its qualified paths.
    pub fn name(&self) -> Label {
        self.name
    }

    /// The root tree.
    pub fn root(&self) -> &Tree {
        &self.root
    }

    /// Mutable access to the root tree.
    pub fn root_mut(&mut self) -> &mut Tree {
        &mut self.root
    }

    /// Replaces the entire contents.
    pub fn set_root(&mut self, root: Tree) {
        self.root = root;
    }

    /// The qualified path of the root: just the database name.
    pub fn root_path(&self) -> Path {
        Path::single(self.name)
    }

    /// Converts a qualified path (`T/c1/y`) to a path relative to the
    /// root (`c1/y`); fails if the first segment is not this database.
    pub fn relative(&self, qualified: &Path) -> Result<Path, TreeError> {
        match qualified.first() {
            Some(first) if first == self.name => {
                Ok(qualified.strip_prefix(&self.root_path()).expect("checked prefix"))
            }
            _ => Err(TreeError::WrongDatabase { expected: self.name, path: qualified.clone() }),
        }
    }

    /// Resolves a qualified path to a subtree.
    pub fn get(&self, qualified: &Path) -> Result<&Tree, TreeError> {
        let rel = self.relative(qualified)?;
        self.root.get(&rel).ok_or_else(|| TreeError::PathNotFound { path: qualified.clone() })
    }

    /// `true` iff the qualified path resolves.
    pub fn contains(&self, qualified: &Path) -> bool {
        self.get(qualified).is_ok()
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree;

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    fn sample() -> Tree {
        tree! {
            "a1" => { "x" => 1, "y" => 2 },
            "a2" => { "x" => 3 },
            "a3" => { "x" => 7, "y" => 6 },
        }
    }

    #[test]
    fn get_resolves_paths() {
        let t = sample();
        assert_eq!(t.get(&p("a1/y")).unwrap(), &Tree::leaf(2));
        assert_eq!(t.get(&p("a2")).unwrap(), &tree! { "x" => 3 });
        assert!(t.get(&p("a9")).is_none());
        assert!(t.get(&p("a1/y/z")).is_none(), "cannot descend through a leaf");
        assert_eq!(t.get(&Path::epsilon()).unwrap(), &t);
    }

    #[test]
    fn insert_edge_follows_union_semantics() {
        let mut t = sample();
        t.insert_edge(&p("a2"), Label::new("y"), Tree::leaf(9)).unwrap();
        assert_eq!(t.get(&p("a2/y")).unwrap(), &Tree::leaf(9));

        // ⊎ fails on a shared edge name.
        let err = t.insert_edge(&p("a2"), Label::new("y"), Tree::leaf(0)).unwrap_err();
        assert_eq!(err, TreeError::DuplicateEdge { at: p("a2"), label: Label::new("y") });

        // Fails if the target path is missing.
        assert!(matches!(
            t.insert_edge(&p("zz"), Label::new("y"), Tree::empty()),
            Err(TreeError::PathNotFound { .. })
        ));

        // Fails when inserting under a leaf.
        assert!(matches!(
            t.insert_edge(&p("a2/x"), Label::new("y"), Tree::empty()),
            Err(TreeError::NotATree { .. })
        ));
    }

    #[test]
    fn delete_edge_returns_subtree_and_fails_when_absent() {
        let mut t = sample();
        let removed = t.delete_edge(&Path::epsilon(), Label::new("a1")).unwrap();
        assert_eq!(removed, tree! { "x" => 1, "y" => 2 });
        assert!(!t.contains(&p("a1")));
        assert!(matches!(
            t.delete_edge(&Path::epsilon(), Label::new("a1")),
            Err(TreeError::EdgeNotFound { .. })
        ));
    }

    #[test]
    fn replace_swaps_subtrees() {
        let mut t = sample();
        let old = t.replace(&p("a2/x"), Tree::leaf(42)).unwrap();
        assert_eq!(old, Tree::leaf(3));
        assert_eq!(t.get(&p("a2/x")).unwrap(), &Tree::leaf(42));
        assert!(matches!(t.replace(&p("zz"), Tree::empty()), Err(TreeError::PathNotFound { .. })));
        // Root replacement is allowed: ε is always present.
        let old = t.replace(&Path::epsilon(), Tree::empty()).unwrap();
        assert_eq!(old.node_count(), sample().node_count());
        assert!(t.is_empty_node());
    }

    #[test]
    fn union_merges_disjoint_and_rejects_clash() {
        let a = tree! { "x" => 1 };
        let b = tree! { "y" => 2 };
        assert_eq!(a.clone().union(b).unwrap(), tree! { "x" => 1, "y" => 2 });
        let clash = tree! { "x" => 9 };
        assert!(matches!(a.union(clash), Err(TreeError::DuplicateEdge { .. })));
    }

    #[test]
    fn counts_and_depth() {
        let t = sample();
        assert_eq!(t.node_count(), 1 + 3 + 5);
        assert_eq!(t.leaf_count(), 5);
        assert_eq!(t.depth(), 2);
        assert_eq!(Tree::empty().node_count(), 1);
        assert_eq!(Tree::empty().leaf_count(), 0);
        assert_eq!(Tree::leaf(1).node_count(), 1);
        assert_eq!(Tree::leaf(1).leaf_count(), 1);
    }

    #[test]
    fn walk_is_deterministic_preorder() {
        let t = sample();
        let paths = t.all_paths(&p("T"));
        let rendered: Vec<String> = paths.iter().map(Path::to_string).collect();
        assert_eq!(
            rendered,
            vec!["T", "T/a1", "T/a1/x", "T/a1/y", "T/a2", "T/a2/x", "T/a3", "T/a3/x", "T/a3/y"]
        );
    }

    #[test]
    fn leaves_lists_values() {
        let t = tree! { "a" => { "b" => 1 }, "c" => "s" };
        let leaves = t.leaves(&Path::epsilon());
        assert_eq!(leaves, vec![(p("a/b"), Value::int(1)), (p("c"), Value::str("s"))]);
    }

    #[test]
    fn display_is_canonical() {
        let t = sample();
        assert_eq!(t.to_string(), "{a1: {x: 1, y: 2}, a2: {x: 3}, a3: {x: 7, y: 6}}");
        assert_eq!(Tree::empty().to_string(), "{}");
        assert_eq!(Tree::leaf("hi").to_string(), "\"hi\"");
    }

    #[test]
    fn database_resolves_qualified_paths() {
        let db = Database::new("T", sample());
        assert_eq!(db.get(&p("T/a1/x")).unwrap(), &Tree::leaf(1));
        assert_eq!(db.get(&p("T")).unwrap(), db.root());
        assert!(matches!(db.get(&p("S1/a1")), Err(TreeError::WrongDatabase { .. })));
        assert!(matches!(db.get(&p("T/zz")), Err(TreeError::PathNotFound { .. })));
        assert_eq!(db.relative(&p("T/a1/x")).unwrap(), p("a1/x"));
        assert!(db.contains(&p("T/a3/y")));
        assert!(!db.contains(&p("T/a3/z")));
    }
}
