//! Path addresses.
//!
//! A path `p ∈ Σ*` identifies at most one node in a tree (Section 2 of
//! the paper): the sequence of edge labels from the root. Provenance
//! records are pairs of paths, so paths must be cheap to clone, hash,
//! compare, and extend. A [`Path`] is an immutable, reference-counted
//! slice of interned labels; cloning is a refcount bump.
//!
//! Paths render and parse in the paper's notation: `T/c2/y`,
//! `SwissProt/Release{20}/Q01780/Citation{3}/Title`. The *first* segment
//! of a database-qualified path names the database (`T`, `S1`, …).

use crate::{Label, TreeError};
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

/// An immutable sequence of labels addressing a node in a tree.
///
/// The empty path `ε` addresses the root.
///
/// ```
/// use cpdb_tree::Path;
/// let p: Path = "T/c2/y".parse().unwrap();
/// assert_eq!(p.len(), 3);
/// assert_eq!(p.to_string(), "T/c2/y");
/// assert!(p.starts_with(&"T/c2".parse().unwrap()));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Path {
    segs: Arc<[Label]>,
}

impl Path {
    /// The empty path `ε`, addressing the root.
    pub fn epsilon() -> Path {
        static EMPTY: OnceEmpty = OnceEmpty(std::sync::OnceLock::new());
        EMPTY.get().clone()
    }

    /// Builds a path from a sequence of labels.
    pub fn from_labels(segs: impl Into<Vec<Label>>) -> Path {
        Path { segs: segs.into().into() }
    }

    /// Builds a single-segment path.
    pub fn single(label: impl Into<Label>) -> Path {
        Path { segs: Arc::from(vec![label.into()]) }
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segs.len()
    }

    /// `true` iff this is `ε`.
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// The segments, in order.
    pub fn segments(&self) -> &[Label] {
        &self.segs
    }

    /// Iterates over segments.
    pub fn iter(&self) -> impl Iterator<Item = Label> + '_ {
        self.segs.iter().copied()
    }

    /// First segment (the database name, for qualified paths).
    pub fn first(&self) -> Option<Label> {
        self.segs.first().copied()
    }

    /// Last segment (the edge into the addressed node).
    pub fn last(&self) -> Option<Label> {
        self.segs.last().copied()
    }

    /// The path with the last segment removed; `None` for `ε`.
    pub fn parent(&self) -> Option<Path> {
        match self.segs.len() {
            0 => None,
            n => Some(Path { segs: Arc::from(&self.segs[..n - 1]) }),
        }
    }

    /// Extends this path by one label: `p/a`.
    pub fn child(&self, label: impl Into<Label>) -> Path {
        let mut v = Vec::with_capacity(self.segs.len() + 1);
        v.extend_from_slice(&self.segs);
        v.push(label.into());
        Path { segs: v.into() }
    }

    /// Concatenates two paths: `p · q`.
    pub fn join(&self, other: &Path) -> Path {
        if self.is_empty() {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let mut v = Vec::with_capacity(self.segs.len() + other.segs.len());
        v.extend_from_slice(&self.segs);
        v.extend_from_slice(&other.segs);
        Path { segs: v.into() }
    }

    /// The paper's prefix order `p ≤ q`: `true` iff `self` is a prefix of
    /// `other` (including `self == other`).
    pub fn is_prefix_of(&self, other: &Path) -> bool {
        other.segs.len() >= self.segs.len() && other.segs[..self.segs.len()] == self.segs[..]
    }

    /// `true` iff `prefix ≤ self`.
    pub fn starts_with(&self, prefix: &Path) -> bool {
        prefix.is_prefix_of(self)
    }

    /// Removes `prefix` from the front: if `self = prefix · r`, returns
    /// `Some(r)`.
    pub fn strip_prefix(&self, prefix: &Path) -> Option<Path> {
        if self.starts_with(prefix) {
            Some(Path { segs: Arc::from(&self.segs[prefix.len()..]) })
        } else {
            None
        }
    }

    /// Rewrites a prefix: if `self = old · r`, returns `Some(new · r)`.
    ///
    /// This is the step used by hierarchical provenance inference: when a
    /// record says `q` was copied to `p`, the provenance of `p/a/b` is
    /// `p/a/b` with prefix `p` replaced by `q`, i.e. `q/a/b`.
    pub fn replace_prefix(&self, old: &Path, new: &Path) -> Option<Path> {
        self.strip_prefix(old).map(|rest| new.join(&rest))
    }

    /// All proper ancestors from longest (the parent) to shortest (`ε`),
    /// excluding `self`.
    pub fn ancestors(&self) -> impl Iterator<Item = Path> + '_ {
        (0..self.segs.len()).rev().map(move |n| Path { segs: Arc::from(&self.segs[..n]) })
    }
}

struct OnceEmpty(std::sync::OnceLock<Path>);
impl OnceEmpty {
    fn get(&self) -> &Path {
        self.0.get_or_init(|| Path { segs: Arc::from(Vec::new()) })
    }
}

impl PartialOrd for Path {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Path {
    /// Lexicographic over labels (which order by spelling), so sorted
    /// provenance tables read in document order: `T/c1 < T/c1/y < T/c2`.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.segs.iter().cmp(other.segs.iter())
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("ε");
        }
        for (i, seg) in self.segs.iter().enumerate() {
            if i > 0 {
                f.write_str("/")?;
            }
            f.write_str(seg.as_str())?;
        }
        Ok(())
    }
}

impl fmt::Debug for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Path({self})")
    }
}

impl FromStr for Path {
    type Err = TreeError;

    /// Parses `a/b/c`. Segments must be non-empty and must not contain
    /// `/`, `:`, `,`, `"`, or whitespace (so tree literals stay
    /// unambiguous). The empty string and `ε` parse to the empty path.
    fn from_str(s: &str) -> Result<Path, TreeError> {
        if s.is_empty() || s == "ε" {
            return Ok(Path::epsilon());
        }
        let mut segs = Vec::new();
        for seg in s.split('/') {
            if seg.is_empty() {
                return Err(TreeError::BadPath { text: s.to_owned(), reason: "empty segment" });
            }
            if seg.contains([':', ',', '"']) || seg.chars().any(char::is_whitespace) {
                return Err(TreeError::BadPath {
                    text: s.to_owned(),
                    reason: "segment contains a reserved character",
                });
            }
            segs.push(Label::new(seg));
        }
        Ok(Path::from_labels(segs))
    }
}

impl From<&[Label]> for Path {
    fn from(segs: &[Label]) -> Path {
        Path { segs: Arc::from(segs) }
    }
}

impl From<Vec<Label>> for Path {
    fn from(segs: Vec<Label>) -> Path {
        Path { segs: segs.into() }
    }
}

/// Builds a [`Path`] from label spellings: `path!["T", "c1", "y"]`.
#[macro_export]
macro_rules! path {
    [] => { $crate::Path::epsilon() };
    [ $( $seg:expr ),+ $(,)? ] => {
        $crate::Path::from_labels(vec![ $( $crate::Label::new(&$seg.to_string()) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    #[test]
    fn parse_display_round_trip() {
        for s in ["T", "T/c1/y", "SwissProt/Release{20}/Q01780/Citation{3}/Title"] {
            assert_eq!(p(s).to_string(), s);
        }
        assert_eq!(Path::epsilon().to_string(), "ε");
        assert_eq!(p(""), Path::epsilon());
        assert_eq!(p("ε"), Path::epsilon());
    }

    #[test]
    fn parse_rejects_bad_segments() {
        assert!("a//b".parse::<Path>().is_err());
        assert!("/a".parse::<Path>().is_err());
        assert!("a/".parse::<Path>().is_err());
        assert!("a/b c".parse::<Path>().is_err());
        assert!("a:b".parse::<Path>().is_err());
    }

    #[test]
    fn prefix_relations() {
        assert!(p("T").is_prefix_of(&p("T/c1")));
        assert!(p("T/c1").is_prefix_of(&p("T/c1")));
        assert!(!p("T/c1").is_prefix_of(&p("T")));
        assert!(!p("T/c1").is_prefix_of(&p("T/c2/c1")));
        assert!(Path::epsilon().is_prefix_of(&p("T")));
    }

    #[test]
    fn strip_and_replace_prefix() {
        assert_eq!(p("T/c2/y").strip_prefix(&p("T")).unwrap(), p("c2/y"));
        assert_eq!(p("T/c2/y").strip_prefix(&p("T/c2/y")).unwrap(), Path::epsilon());
        assert_eq!(p("T/c2/y").strip_prefix(&p("S1")), None);
        // The hierarchical-inference rewrite from the paper: T/c2 copied
        // from S1/a2, so T/c2/x came from S1/a2/x.
        assert_eq!(p("T/c2/x").replace_prefix(&p("T/c2"), &p("S1/a2")).unwrap(), p("S1/a2/x"));
    }

    #[test]
    fn family_accessors() {
        let q = p("T/c2/y");
        assert_eq!(q.parent().unwrap(), p("T/c2"));
        assert_eq!(q.first().unwrap().as_str(), "T");
        assert_eq!(q.last().unwrap().as_str(), "y");
        assert_eq!(q.child("z"), p("T/c2/y/z"));
        assert_eq!(Path::epsilon().parent(), None);
        let ancs: Vec<Path> = q.ancestors().collect();
        assert_eq!(ancs, vec![p("T/c2"), p("T"), Path::epsilon()]);
    }

    #[test]
    fn ordering_is_document_order() {
        let mut v = vec![p("T/c2"), p("T/c1/y"), p("T/c1"), p("S1/a1")];
        v.sort();
        assert_eq!(v, vec![p("S1/a1"), p("T/c1"), p("T/c1/y"), p("T/c2")]);
    }

    #[test]
    fn join_and_macro() {
        assert_eq!(p("T").join(&p("c1/y")), p("T/c1/y"));
        assert_eq!(p("T").join(&Path::epsilon()), p("T"));
        assert_eq!(Path::epsilon().join(&p("T")), p("T"));
        assert_eq!(path!["T", "c1", "y"], p("T/c1/y"));
        assert_eq!(path![], Path::epsilon());
    }
}
