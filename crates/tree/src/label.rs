//! Interned edge labels.
//!
//! The paper (Section 2) fixes a set of labels `Σ` and addresses data by
//! paths `p ∈ Σ*`. Labels occur everywhere — in every path of every
//! provenance record — so they are interned: each distinct spelling is
//! stored once in a process-wide table and a [`Label`] is a copyable
//! 32-bit symbol. Equality and hashing are O(1); ordering compares the
//! underlying spellings so that collections keyed by `Label` iterate in
//! a deterministic, human-meaningful order regardless of interning order.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// The process-wide label interner.
struct Interner {
    /// Spelling → symbol.
    map: HashMap<&'static str, u32>,
    /// Symbol → spelling. Entries are leaked `Box<str>` so the `&'static`
    /// borrows stay valid for the life of the process; the leak is bounded
    /// by the number of *distinct* labels, which for a curated database is
    /// small (schema vocabulary plus record identifiers).
    names: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::labeled(
            "tree.interner",
            Interner { map: HashMap::with_capacity(1024), names: Vec::with_capacity(1024) },
        )
    })
}

/// An interned edge label: one step of a path such as `T`, `c1`, or
/// `Release{20}`.
///
/// `Label` is `Copy` and 4 bytes; cloning paths and provenance records is
/// cheap. Two labels are equal iff their spellings are equal.
///
/// ```
/// use cpdb_tree::Label;
/// let a = Label::new("citation");
/// let b = Label::new("citation");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "citation");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct Label(u32);

impl Label {
    /// Interns `name` and returns its label.
    ///
    /// Any non-empty string not containing the path separator `/` or the
    /// tree-literal metacharacters `{: ,}` quotes is a valid label; this
    /// constructor does not validate (the path and tree parsers do) so it
    /// can be used freely with trusted, programmatic names.
    pub fn new(name: &str) -> Label {
        // Fast path: read lock only.
        if let Some(&id) = interner().read().map.get(name) {
            return Label(id);
        }
        let mut w = interner().write();
        if let Some(&id) = w.map.get(name) {
            return Label(id);
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = u32::try_from(w.names.len()).expect("more than u32::MAX distinct labels");
        w.names.push(leaked);
        w.map.insert(leaked, id);
        Label(id)
    }

    /// The spelling of this label.
    pub fn as_str(self) -> &'static str {
        interner().read().names[self.0 as usize]
    }

    /// The raw symbol id. Exposed for storage codecs; ids are stable within
    /// a process but **not** across processes — persist spellings, not ids.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl PartialOrd for Label {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Label {
    /// Orders by spelling, so `BTreeMap<Label, _>` iterates children in
    /// the order a reader of the paper's figures expects (`c1 < c2 < …`).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Label({:?})", self.as_str())
    }
}

impl From<&str> for Label {
    fn from(s: &str) -> Label {
        Label::new(s)
    }
}

impl From<String> for Label {
    fn from(s: String) -> Label {
        Label::new(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups() {
        let a = Label::new("abc");
        let b = Label::new("abc");
        let c = Label::new("abd");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_ne!(a, c);
    }

    #[test]
    fn ordering_is_by_spelling() {
        // Intern in reverse order; Ord must still follow the spelling.
        let z = Label::new("zz-order-test");
        let a = Label::new("aa-order-test");
        assert!(a < z);
        let mut v = [z, a];
        v.sort();
        assert_eq!(v[0].as_str(), "aa-order-test");
    }

    #[test]
    fn display_round_trips() {
        let l = Label::new("Release{20}");
        assert_eq!(l.to_string(), "Release{20}");
        assert_eq!(format!("{l:?}"), "Label(\"Release{20}\")");
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    (0..200)
                        .map(|i| Label::new(&format!("concurrent-{i}")).id())
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<u32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }
}
