//! Error types for tree operations.
//!
//! Each variant corresponds to a point where the paper's semantics is
//! *undefined*: `t ⊎ {a:v}` "fails if there are any shared edge names",
//! `t − a` "fails if no such node exists", and `t[p := t']` "fails if
//! path `p` is not present in `t`" (Section 2). The library surfaces
//! those failures as typed errors rather than panicking.

use crate::{Label, Path};
use std::fmt;

/// Failure of a tree operation.
#[derive(Clone, PartialEq, Eq)]
pub enum TreeError {
    /// A path did not resolve to a node.
    PathNotFound {
        /// The path that failed to resolve.
        path: Path,
    },
    /// A path tried to descend through a leaf value.
    ThroughLeaf {
        /// The path of the leaf that blocked descent.
        at: Path,
    },
    /// Inserting an edge that already exists (`⊎` name clash).
    DuplicateEdge {
        /// The node under which the clash occurred.
        at: Path,
        /// The clashing label.
        label: Label,
    },
    /// Deleting an edge that does not exist (`t − a` failure).
    EdgeNotFound {
        /// The node under which deletion was attempted.
        at: Path,
        /// The missing label.
        label: Label,
    },
    /// Structural edit applied to a leaf node.
    NotATree {
        /// The leaf's path.
        at: Path,
    },
    /// A path string failed to parse.
    BadPath {
        /// The offending text.
        text: String,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// A tree literal failed to parse.
    BadLiteral {
        /// Byte offset of the failure in the input.
        offset: usize,
        /// What was expected.
        reason: String,
    },
    /// A database-qualified path named the wrong database.
    WrongDatabase {
        /// The database that was addressed.
        expected: Label,
        /// The path that named something else.
        path: Path,
    },
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::PathNotFound { path } => write!(f, "path {path} not found"),
            TreeError::ThroughLeaf { at } => {
                write!(f, "cannot descend through leaf value at {at}")
            }
            TreeError::DuplicateEdge { at, label } => {
                write!(f, "edge {label} already exists under {at}")
            }
            TreeError::EdgeNotFound { at, label } => {
                write!(f, "no edge {label} under {at}")
            }
            TreeError::NotATree { at } => {
                write!(f, "node at {at} is a leaf, not a tree")
            }
            TreeError::BadPath { text, reason } => {
                write!(f, "invalid path {text:?}: {reason}")
            }
            TreeError::BadLiteral { offset, reason } => {
                write!(f, "invalid tree literal at byte {offset}: {reason}")
            }
            TreeError::WrongDatabase { expected, path } => {
                write!(f, "path {path} does not address database {expected}")
            }
        }
    }
}

impl fmt::Debug for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for TreeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_the_path() {
        let e = TreeError::PathNotFound { path: "T/c9".parse().unwrap() };
        assert!(e.to_string().contains("T/c9"));
        let e = TreeError::DuplicateEdge { at: "T".parse().unwrap(), label: Label::new("c1") };
        assert!(e.to_string().contains("c1"));
        assert!(e.to_string().contains('T'));
    }
}
