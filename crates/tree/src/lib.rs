//! # cpdb-tree — the curated-database data model
//!
//! Unordered, edge-labeled trees with values at the leaves, addressed by
//! paths, exactly as in Section 2 of Buneman, Chapman & Cheney,
//! *Provenance Management in Curated Databases* (SIGMOD 2006):
//!
//! > "The first \[assumption\] is that the database can be viewed as a
//! > tree; the second is that the edges of that tree can be labeled in
//! > such a way that a given sequence of labels occurs on at most one
//! > path from the root and therefore identifies at most one data
//! > element."
//!
//! The model is deliberately storage-agnostic: relational databases map
//! onto it as `DB/R/tid/F` four-level paths, filesystems and XML views
//! map onto it directly. Higher layers (`cpdb-xmldb`, the provenance
//! trackers in `cpdb-core`) build on these types.
//!
//! ## Quick tour
//!
//! ```
//! use cpdb_tree::{tree, Database, Label, Path, Tree};
//!
//! // Build the source tree S1 from Figure 4 of the paper.
//! let s1 = tree! {
//!     "a1" => { "x" => 1, "y" => 2 },
//!     "a2" => { "x" => 3 },
//!     "a3" => { "x" => 7, "y" => 6 },
//! };
//! let db = Database::new("S1", s1);
//!
//! // Address data by qualified paths.
//! let p: Path = "S1/a1/y".parse().unwrap();
//! assert_eq!(db.get(&p).unwrap(), &Tree::leaf(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;
mod keycode;
mod label;
mod macros;
mod parse;
mod path;
mod tree;
mod value;

pub use error::TreeError;
pub use label::Label;
pub use parse::parse_tree;
pub use path::Path;
pub use tree::{Database, Tree};
pub use value::Value;
