//! Order-preserving key encoding for [`Path`].
//!
//! Storage indexes keyed by a path's *display* string cannot answer
//! subtree (path-prefix) probes with a contiguous range: `"T/c2"` is a
//! string prefix of `"T/c20"`, yet `T/c20` is not a descendant of
//! `T/c2`, and a segment may contain characters that sort below the
//! `/` separator, so display-string order does not even agree with
//! segment-wise path order.
//!
//! [`Path::key`] fixes both problems with the classic tuple encoding:
//! every segment is escaped so that `NUL` (`\u{0}`) never appears in
//! content, then terminated with `NUL`:
//!
//! * `\u{0}` in a segment → `\u{1}\u{1}`
//! * `\u{1}` in a segment → `\u{1}\u{2}`
//! * every segment is followed by one `\u{0}` terminator
//!
//! Because the terminator sorts strictly below every escaped content
//! byte (which is ≥ `\u{1}`), lexicographic order over encoded keys is
//! exactly the segment-wise path order of [`Path::cmp`], and the
//! descendants-or-self of `p` occupy precisely the contiguous key range
//! returned by [`Path::prefix_range_bounds`]: `T/c2` encodes as
//! `"T\0c2\0"`, its subtree ends before `"T\0c2\u{1}"`, and `T/c20`
//! (`"T\0c20\0"`) falls outside.
//!
//! The encoding is valid UTF-8 (only ASCII control characters are
//! introduced), so keys pass through `Str`-typed storage columns and
//! ordinary `BTreeMap<String, _>` side tables unchanged.

use crate::{Label, Path, TreeError};
use std::ops::Bound;

/// Segment terminator: sorts below every escaped content character.
const TERM: char = '\u{0}';
/// Escape lead-in.
const ESC: char = '\u{1}';

fn push_escaped(segment: &str, out: &mut String) {
    for c in segment.chars() {
        match c {
            TERM => {
                out.push(ESC);
                out.push('\u{1}');
            }
            ESC => {
                out.push(ESC);
                out.push('\u{2}');
            }
            c => out.push(c),
        }
    }
}

impl Path {
    /// The order-preserving storage key of this path.
    ///
    /// Lexicographic (byte) order over keys equals [`Path`]'s own
    /// segment-wise order, and the keys of exactly the
    /// descendants-or-self of `p` form the contiguous range
    /// [`Path::prefix_range_bounds`].
    ///
    /// ```
    /// use cpdb_tree::Path;
    /// let p: Path = "T/c2".parse().unwrap();
    /// assert_eq!(p.key(), "T\u{0}c2\u{0}");
    /// // T/c20 is NOT in T/c2's subtree range:
    /// let (lo, hi) = p.prefix_range_bounds();
    /// let k20 = "T/c20".parse::<Path>().unwrap().key();
    /// let in_range = match (&lo, &hi) {
    ///     (std::ops::Bound::Included(l), std::ops::Bound::Excluded(h)) => *l <= k20 && k20 < *h,
    ///     _ => unreachable!(),
    /// };
    /// assert!(!in_range);
    /// ```
    pub fn key(&self) -> String {
        let mut out = String::with_capacity(self.segments().len() * 8);
        for seg in self.iter() {
            push_escaped(seg.as_str(), &mut out);
            out.push(TERM);
        }
        out
    }

    /// Decodes a key produced by [`Path::key`].
    pub fn from_key(key: &str) -> Result<Path, TreeError> {
        let bad = |reason: &'static str| TreeError::BadPath { text: key.to_owned(), reason };
        let mut segs: Vec<Label> = Vec::new();
        let mut cur = String::new();
        let mut chars = key.chars();
        while let Some(c) = chars.next() {
            match c {
                TERM => {
                    if cur.is_empty() {
                        return Err(bad("empty segment in key"));
                    }
                    segs.push(Label::new(&cur));
                    cur.clear();
                }
                ESC => match chars.next() {
                    Some('\u{1}') => cur.push(TERM),
                    Some('\u{2}') => cur.push(ESC),
                    _ => return Err(bad("dangling escape in key")),
                },
                c => cur.push(c),
            }
        }
        if !cur.is_empty() {
            return Err(bad("key does not end at a segment boundary"));
        }
        Ok(Path::from_labels(segs))
    }

    /// Key-range bounds covering exactly the keys of this path and all
    /// of its descendants, for use with ordered indexes and
    /// `BTreeMap::range`.
    ///
    /// The empty path returns an unbounded range (every path is a
    /// descendant of the root).
    pub fn prefix_range_bounds(&self) -> (Bound<String>, Bound<String>) {
        if self.is_empty() {
            return (Bound::Unbounded, Bound::Unbounded);
        }
        let lo = self.key();
        // The key ends with the TERM terminator; bumping that final
        // character to the escape lead-in (the next code point) caps
        // the subtree: every descendant key extends `lo`, and every
        // extension of `lo` sorts below `hi`.
        let mut hi = lo.clone();
        hi.pop();
        hi.push(ESC);
        (Bound::Included(lo), Bound::Excluded(hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Path {
        s.parse().unwrap()
    }

    #[test]
    fn keys_round_trip() {
        for s in ["", "T", "T/c2/y", "SwissProt/Release{20}/Q01780/Citation{3}/Title"] {
            let path = p(s);
            assert_eq!(Path::from_key(&path.key()).unwrap(), path, "{s:?}");
        }
        // Segments containing the encoding's own control characters
        // still round-trip (labels are not restricted at this layer).
        let weird =
            Path::from_labels(vec![Label::new("a\u{0}b"), Label::new("\u{1}"), Label::new("c")]);
        assert_eq!(Path::from_key(&weird.key()).unwrap(), weird);
    }

    #[test]
    fn malformed_keys_are_rejected() {
        assert!(Path::from_key("no-terminator").is_err());
        assert!(Path::from_key("\u{0}").is_err(), "empty segment");
        assert!(Path::from_key("a\u{1}").is_err(), "dangling escape");
        assert_eq!(Path::from_key("").unwrap(), Path::epsilon());
    }

    #[test]
    fn key_order_matches_path_order() {
        // Includes the characters that break display-string order:
        // '!' sorts below '/', digits sort above it.
        let mut paths: Vec<Path> = ["T", "T/c2", "T/c2/y", "T/c20", "T/c2!x", "S1/a1", "T/c10"]
            .iter()
            .map(|s| {
                // Build via labels so '!' segments are allowed.
                Path::from_labels(s.split('/').map(Label::new).collect::<Vec<_>>())
            })
            .collect();
        let mut by_key = paths.clone();
        paths.sort();
        by_key.sort_by_key(|a| a.key());
        assert_eq!(paths, by_key);
    }

    #[test]
    fn prefix_range_is_exactly_the_subtree() {
        let root = p("T/c2");
        let (lo, hi) = root.prefix_range_bounds();
        let contains = |q: &Path| {
            let k = q.key();
            let above = match &lo {
                Bound::Included(l) => k >= *l,
                _ => true,
            };
            let below = match &hi {
                Bound::Excluded(h) => k < *h,
                _ => true,
            };
            above && below
        };
        assert!(contains(&p("T/c2")));
        assert!(contains(&p("T/c2/y")));
        assert!(contains(&p("T/c2/y/deep/er")));
        assert!(!contains(&p("T/c20")), "T/c20 must be outside T/c2's range");
        assert!(!contains(&p("T/c1")));
        assert!(!contains(&p("T")));
        assert!(!contains(&p("S1/c2")));
    }
}
