//! Parsing of tree literals.
//!
//! Trees render and parse in a compact literal syntax used throughout the
//! examples, tests, and fixtures:
//!
//! ```text
//! {a1: {x: 1, y: 2}, note: "copied from SwissProt"}
//! ```
//!
//! An interior node is `{label: tree, …}` (possibly `{}`), a leaf is an
//! integer or a double-quoted string. Labels may be bare (`Release{20}`,
//! `NP_005493`) or quoted when they contain reserved characters.
//! [`Tree`]'s `Display` implementation emits this syntax canonically
//! (children sorted by label), and [`parse_tree`] accepts it back, so
//! `parse_tree(&t.to_string()) == Ok(t)` for every tree.

use crate::{Label, Tree, TreeError, Value};
use std::collections::BTreeMap;
use std::fmt;

/// Characters that end a bare label or bare value token.
fn is_reserved(c: char) -> bool {
    matches!(c, ':' | ',' | '"' | '/') || c.is_whitespace()
}

/// Writes a label, quoting it if it contains reserved characters or could
/// be confused with a leaf (starts with a digit, `-`, `{`, or is empty).
pub(crate) fn write_label(f: &mut fmt::Formatter<'_>, label: Label) -> fmt::Result {
    let s = label.as_str();
    let needs_quotes = s.is_empty()
        || s.chars().any(is_reserved)
        || s.starts_with(['{', '-'])
        || s.starts_with(|c: char| c.is_ascii_digit());
    if needs_quotes {
        write!(f, "{s:?}")
    } else {
        f.write_str(s)
    }
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Parser<'a> {
        Parser { input, pos: 0 }
    }

    fn err(&self, reason: impl Into<String>) -> TreeError {
        TreeError::BadLiteral { offset: self.pos, reason: reason.into() }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(char::is_whitespace) {
            self.bump();
        }
    }

    fn expect(&mut self, c: char) -> Result<(), TreeError> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {c:?}")))
        }
    }

    fn quoted_string(&mut self) -> Result<String, TreeError> {
        debug_assert_eq!(self.peek(), Some('"'));
        self.bump();
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some('"') => return Ok(out),
                Some('\\') => match self.bump() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    other => {
                        return Err(self.err(format!("bad escape {other:?}")));
                    }
                },
                Some(c) => out.push(c),
            }
        }
    }

    /// A label in key position: quoted, or bare text up to the `:`.
    fn label(&mut self) -> Result<Label, TreeError> {
        self.skip_ws();
        if self.peek() == Some('"') {
            let s = self.quoted_string()?;
            if s.is_empty() {
                return Err(self.err("empty label"));
            }
            return Ok(Label::new(&s));
        }
        let start = self.pos;
        // Bare labels may contain balanced braces (`Release{20}`) — scan
        // to the colon that must follow a key, tracking brace depth so an
        // embedded `}` doesn't end the label, then validate.
        let mut depth = 0usize;
        while let Some(c) = self.peek() {
            match c {
                ':' | ',' => break,
                '{' => depth += 1,
                '}' => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                _ => {}
            }
            self.bump();
        }
        let raw = self.input[start..self.pos].trim();
        if raw.is_empty() {
            return Err(self.err("empty label"));
        }
        if raw.contains(['"', '/']) || raw.chars().any(char::is_whitespace) {
            return Err(self.err(format!("label {raw:?} contains a reserved character")));
        }
        Ok(Label::new(raw))
    }

    fn value(&mut self) -> Result<Value, TreeError> {
        self.skip_ws();
        match self.peek() {
            Some('"') => Ok(Value::Str(self.quoted_string()?.into())),
            Some(c) if c.is_ascii_digit() || c == '-' => {
                let start = self.pos;
                self.bump();
                while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                    self.bump();
                }
                let text = &self.input[start..self.pos];
                text.parse::<i64>()
                    .map(Value::Int)
                    .map_err(|e| self.err(format!("bad integer {text:?}: {e}")))
            }
            other => Err(self.err(format!("expected a value, found {other:?}"))),
        }
    }

    fn tree(&mut self) -> Result<Tree, TreeError> {
        self.skip_ws();
        if self.peek() != Some('{') {
            return Ok(Tree::Leaf(self.value()?));
        }
        self.bump();
        let mut children = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.bump();
            return Ok(Tree::Node(children));
        }
        loop {
            let label = self.label()?;
            self.expect(':')?;
            let sub = self.tree()?;
            if children.insert(label, sub).is_some() {
                return Err(self.err(format!("duplicate edge label {label}")));
            }
            self.skip_ws();
            match self.bump() {
                Some(',') => {
                    // Allow a trailing comma before `}`.
                    self.skip_ws();
                    if self.peek() == Some('}') {
                        self.bump();
                        return Ok(Tree::Node(children));
                    }
                }
                Some('}') => return Ok(Tree::Node(children)),
                other => return Err(self.err(format!("expected ',' or '}}', found {other:?}"))),
            }
        }
    }
}

/// Parses a tree literal. Inverse of [`Tree`]'s `Display`.
///
/// ```
/// use cpdb_tree::{parse_tree, tree};
/// let t = parse_tree("{a: 1, b: {c: \"x\"}}").unwrap();
/// assert_eq!(t, tree! { "a" => 1, "b" => { "c" => "x" } });
/// ```
pub fn parse_tree(input: &str) -> Result<Tree, TreeError> {
    let mut p = Parser::new(input);
    let t = p.tree()?;
    p.skip_ws();
    if p.peek().is_some() {
        return Err(p.err("trailing input after tree"));
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree;

    #[test]
    fn parses_leaves() {
        assert_eq!(parse_tree("42").unwrap(), Tree::leaf(42));
        assert_eq!(parse_tree("-7").unwrap(), Tree::leaf(-7));
        assert_eq!(parse_tree("\"hi\"").unwrap(), Tree::leaf("hi"));
        assert_eq!(parse_tree(r#""a\"b\\c\n""#).unwrap(), Tree::leaf("a\"b\\c\n"));
    }

    #[test]
    fn parses_nodes() {
        assert_eq!(parse_tree("{}").unwrap(), Tree::empty());
        assert_eq!(parse_tree("{ }").unwrap(), Tree::empty());
        assert_eq!(
            parse_tree("{a: 1, b: {c: \"x\"}}").unwrap(),
            tree! { "a" => 1, "b" => { "c" => "x" } }
        );
        // Trailing comma and loose whitespace are fine.
        assert_eq!(parse_tree(" { a : 1 , } ").unwrap(), tree! { "a" => 1 });
    }

    #[test]
    fn parses_braced_and_quoted_labels() {
        let t = parse_tree("{Release{20}: {Q01780: \"entry\"}}").unwrap();
        assert!(t.child(Label::new("Release{20}")).is_some());
        let t = parse_tree(r#"{"label with spaces": 1}"#).unwrap();
        assert!(t.child(Label::new("label with spaces")).is_some());
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "{",
            "}",
            "{a}",
            "{a:}",
            "{a: 1,, b: 2}",
            "{a: 1} extra",
            "{: 1}",
            "{a: 1, a: 2}",
            "\"unterminated",
            "{a: 12x}",
        ] {
            assert!(parse_tree(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn error_carries_offset() {
        let err = parse_tree("{a: ?}").unwrap_err();
        match err {
            TreeError::BadLiteral { offset, .. } => assert_eq!(offset, 4),
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn display_round_trips() {
        let t = tree! {
            "a1" => { "x" => 1, "y" => "two" },
            "Release{20}" => {},
            "z" => { "deep" => { "deeper" => (-5) } },
        };
        assert_eq!(parse_tree(&t.to_string()).unwrap(), t);
    }

    #[test]
    fn display_quotes_awkward_labels() {
        let t = Tree::node([(Label::new("has space"), Tree::leaf(1))]);
        let s = t.to_string();
        assert_eq!(s, "{\"has space\": 1}");
        assert_eq!(parse_tree(&s).unwrap(), t);
        // Numeric-looking labels must be quoted too.
        let t = Tree::node([(Label::new("42"), Tree::leaf(1))]);
        assert_eq!(parse_tree(&t.to_string()).unwrap(), t);
    }
}
