//! Leaf values.
//!
//! The paper's trees "store data values from some domain `D` only at the
//! leaves" (Section 2). Curated biological databases hold mostly text
//! (protein names, PubMed identifiers) and numbers, so `D` here is the
//! union of strings and 64-bit integers.

use std::fmt;
use std::sync::Arc;

/// A data value stored at a leaf of a tree.
///
/// Strings are reference-counted so that copying a subtree — the paper's
/// central operation — shares leaf payloads instead of reallocating them.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// An integer datum, e.g. a count or identifier (`12504680`).
    Int(i64),
    /// A textual datum, e.g. `"P02741"`.
    Str(Arc<str>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Builds an integer value.
    pub fn int(i: i64) -> Value {
        Value::Int(i)
    }

    /// Returns the integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Str(_) => None,
        }
    }

    /// Returns the string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Int(_) => None,
            Value::Str(s) => Some(s),
        }
    }

    /// Approximate in-memory size of the payload in bytes, used by the
    /// experiment harness to report storage figures.
    pub fn payload_bytes(&self) -> usize {
        match self {
            Value::Int(_) => 8,
            Value::Str(s) => s.len(),
        }
    }
}

impl fmt::Display for Value {
    /// Renders in tree-literal syntax: integers bare, strings quoted.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{:?}", s.as_ref()),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Value {
        Value::Int(i64::from(i))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(Arc::from(s.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::int(7).as_int(), Some(7));
        assert_eq!(Value::int(7).as_str(), None);
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::str("x").as_int(), None);
    }

    #[test]
    fn display_quotes_strings_only() {
        assert_eq!(Value::int(-3).to_string(), "-3");
        assert_eq!(Value::str("a b").to_string(), "\"a b\"");
        assert_eq!(Value::str("say \"hi\"").to_string(), "\"say \\\"hi\\\"\"");
    }

    #[test]
    fn clone_shares_string_storage() {
        let v = Value::str("shared");
        let w = v.clone();
        match (&v, &w) {
            (Value::Str(a), Value::Str(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn payload_bytes() {
        assert_eq!(Value::int(1).payload_bytes(), 8);
        assert_eq!(Value::str("abcd").payload_bytes(), 4);
    }
}
