//! Convenience macros for building trees in tests and examples.

/// Builds a [`crate::Tree`] from a literal structure.
///
/// Keys are string literals (or expressions evaluating to something
/// `Display`able); values are either nested `{ … }` blocks or expressions
/// convertible into a leaf [`crate::Value`] (`i64`, `&str`, `String`).
///
/// ```
/// use cpdb_tree::tree;
/// let t = tree! {
///     "protein" => {
///         "name" => "ABC1",
///         "id" => 95477,
///         "PTM" => {},
///     },
/// };
/// assert_eq!(t.node_count(), 5);
/// ```
#[macro_export]
macro_rules! tree {
    () => { $crate::Tree::empty() };
    ( $( $k:tt => $v:tt ),+ $(,)? ) => {{
        let mut m = ::std::collections::BTreeMap::new();
        $(
            m.insert($crate::Label::new($k), $crate::tree_subtree!($v));
        )+
        $crate::Tree::from_map(m)
    }};
}

/// Internal helper for [`tree!`]: interprets one right-hand side.
#[macro_export]
#[doc(hidden)]
macro_rules! tree_subtree {
    ( { $( $k:tt => $v:tt ),* $(,)? } ) => {
        $crate::tree!( $( $k => $v ),* )
    };
    // Parenthesized escape hatch for values that span several token
    // trees, e.g. negative literals: `"n" => (-5)`.
    ( ( $e:expr ) ) => {
        $crate::Tree::from($e)
    };
    ( $e:expr ) => {
        $crate::Tree::from($e)
    };
}

#[cfg(test)]
mod tests {
    use crate::{Label, Tree, Value};

    #[test]
    fn empty_and_nested() {
        assert_eq!(tree! {}, Tree::empty());
        let t = tree! {
            "a" => { "b" => {}, "c" => 1 },
            "d" => "str",
        };
        assert_eq!(t.child(Label::new("a")).unwrap().node_count(), 3);
        assert_eq!(t.get(&"d".parse().unwrap()).unwrap().as_value(), Some(&Value::str("str")));
    }

    #[test]
    fn trailing_commas_ok() {
        let t = tree! { "a" => 1, };
        assert_eq!(t.node_count(), 2);
    }
}
