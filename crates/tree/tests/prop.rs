//! Property-based tests for the tree data model.

use cpdb_tree::{parse_tree, Label, Path, Tree, Value};
use proptest::prelude::*;

/// Labels drawn from a safe charset (also exercises braces, which the
/// paper's examples use in `Release{20}`-style names).
fn arb_label() -> impl Strategy<Value = Label> {
    prop_oneof!["[a-z][a-z0-9_.]{0,6}", "[A-Z]{1,3}[0-9]{1,4}", "[a-z]{1,4}\\{[0-9]{1,2}\\}",]
        .prop_map(|s| Label::new(&s))
}

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![any::<i64>().prop_map(Value::Int), "[ -~]{0,12}".prop_map(Value::str),]
}

fn arb_tree() -> impl Strategy<Value = Tree> {
    let leaf = arb_value().prop_map(Tree::Leaf);
    leaf.prop_recursive(4, 64, 6, |inner| {
        proptest::collection::btree_map(arb_label(), inner, 0..6).prop_map(Tree::from_map)
    })
}

fn arb_path() -> impl Strategy<Value = Path> {
    proptest::collection::vec(arb_label(), 0..6).prop_map(Path::from_labels)
}

proptest! {
    #[test]
    fn literal_round_trip(t in arb_tree()) {
        let rendered = t.to_string();
        let parsed = parse_tree(&rendered).expect("canonical output must parse");
        prop_assert_eq!(parsed, t);
    }

    #[test]
    fn path_display_round_trip(p in arb_path()) {
        let parsed: Path = p.to_string().parse().unwrap();
        prop_assert_eq!(parsed, p);
    }

    #[test]
    fn join_then_strip_is_identity(a in arb_path(), b in arb_path()) {
        let joined = a.join(&b);
        prop_assert!(joined.starts_with(&a));
        prop_assert_eq!(joined.strip_prefix(&a).unwrap(), b);
    }

    #[test]
    fn replace_prefix_round_trips(a in arb_path(), b in arb_path(), rest in arb_path()) {
        let p = a.join(&rest);
        let q = p.replace_prefix(&a, &b).unwrap();
        prop_assert_eq!(q.replace_prefix(&b, &a).unwrap(), p);
    }

    #[test]
    fn replace_makes_get_return_new(t in arb_tree(), new in arb_tree()) {
        // Pick every existing path and check the replace/get law on each.
        let paths = t.all_paths(&Path::epsilon());
        for p in paths.into_iter().take(8) {
            let mut u = t.clone();
            u.replace(&p, new.clone()).unwrap();
            prop_assert_eq!(u.get(&p).unwrap(), &new);
        }
    }

    #[test]
    fn insert_then_delete_is_identity(t in arb_tree(), label in arb_label(), sub in arb_tree()) {
        // Find interior nodes without `label`; insert+delete must be a no-op.
        let mut candidates = Vec::new();
        t.walk(&Path::epsilon(), &mut |p, node| {
            if node.children().is_some_and(|m| !m.contains_key(&label)) {
                candidates.push(p.clone());
            }
        });
        for p in candidates.into_iter().take(8) {
            let mut u = t.clone();
            u.insert_edge(&p, label, sub.clone()).unwrap();
            prop_assert_eq!(u.get(&p.child(label)).unwrap(), &sub);
            u.delete_edge(&p, label).unwrap();
            prop_assert_eq!(&u, &t);
        }
    }

    #[test]
    fn node_count_equals_walk_count(t in arb_tree()) {
        let mut n = 0usize;
        t.walk(&Path::epsilon(), &mut |_, _| n += 1);
        prop_assert_eq!(n, t.node_count());
        prop_assert_eq!(t.all_paths(&Path::epsilon()).len(), t.node_count());
    }

    #[test]
    fn every_listed_path_resolves(t in arb_tree()) {
        for p in t.all_paths(&Path::epsilon()) {
            prop_assert!(t.get(&p).is_some());
        }
    }

    #[test]
    fn leaf_count_matches_leaves(t in arb_tree()) {
        prop_assert_eq!(t.leaves(&Path::epsilon()).len(), t.leaf_count());
    }

    // ---- Order-preserving key encoding (`Path::key`) ----------------

    /// `from_key(key(p)) == p` for arbitrary paths.
    #[test]
    fn key_round_trips(p in arb_path()) {
        prop_assert_eq!(Path::from_key(&p.key()).unwrap(), p);
    }

    /// Lexicographic order of encoded keys is exactly the segment-wise
    /// path order of `Path::cmp`.
    #[test]
    fn key_order_equals_path_order(a in arb_path(), b in arb_path()) {
        prop_assert_eq!(a.key().cmp(&b.key()), a.cmp(&b));
    }

    /// Every path in `p`'s subtree — and only those — falls inside
    /// `p.prefix_range_bounds()`. Exercised against arbitrary other
    /// paths, including sibling-with-prefix-spelling cases like
    /// `T/c2` vs `T/c20`.
    #[test]
    fn prefix_range_contains_exactly_the_subtree(p in arb_path(), q in arb_path()) {
        use std::ops::Bound;
        let (lo, hi) = p.prefix_range_bounds();
        let k = q.key();
        let above = match &lo {
            Bound::Included(l) => k >= *l,
            Bound::Excluded(l) => k > *l,
            Bound::Unbounded => true,
        };
        let below = match &hi {
            Bound::Included(h) => k <= *h,
            Bound::Excluded(h) => k < *h,
            Bound::Unbounded => true,
        };
        prop_assert_eq!(above && below, q.starts_with(&p), "p={} q={}", p, q);
    }

    /// Joining any suffix onto `p` stays in `p`'s range (the range scan
    /// finds all descendants, however deep).
    #[test]
    fn descendants_always_land_in_range(p in arb_path(), rest in arb_path()) {
        use std::ops::Bound;
        let q = p.join(&rest);
        let (lo, hi) = p.prefix_range_bounds();
        let k = q.key();
        let above = match &lo {
            Bound::Included(l) => k >= *l,
            Bound::Excluded(l) => k > *l,
            Bound::Unbounded => true,
        };
        let below = match &hi {
            Bound::Excluded(h) => k < *h,
            Bound::Included(h) => k <= *h,
            Bound::Unbounded => true,
        };
        prop_assert!(above && below, "p={} q={}", p, q);
    }
}

/// The boundary case the encoding exists for, pinned explicitly: the
/// display string `"T/c2"` is a prefix of `"T/c20"`, but the key range
/// of `T/c2` must exclude `T/c20` while containing the whole `T/c2`
/// subtree.
#[test]
fn t_c2_range_excludes_t_c20() {
    use std::ops::Bound;
    let p: Path = "T/c2".parse().unwrap();
    let (lo, hi) = p.prefix_range_bounds();
    let (Bound::Included(lo), Bound::Excluded(hi)) = (lo, hi) else {
        panic!("non-empty prefix must yield a half-open range");
    };
    let in_range = |s: &str| {
        let k: Path = s.parse().unwrap();
        let k = k.key();
        k >= lo && k < hi
    };
    assert!(in_range("T/c2"));
    assert!(in_range("T/c2/y"));
    assert!(in_range("T/c2/y/deep"));
    assert!(!in_range("T/c20"), "T/c20 is a sibling, not a descendant");
    assert!(!in_range("T/c20/x"));
    assert!(!in_range("T/c1"));
    assert!(!in_range("T"));
}
