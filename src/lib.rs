//! This facade crate re-exports the public API of the workspace
//! crates:
//!
//! * [`tree`] — the edge-labeled tree data model and path addressing;
//! * [`update`] — the `ins`/`del`/`copy` update language and `[[U]]`;
//! * [`obs`] — first-party tracing and metrics (spans, histograms,
//!   per-shard heat maps, stats exposition);
//! * [`storage`] — the paged relational storage engine (provenance store);
//! * [`xmldb`] — the native tree database (target/source substrate);
//! * [`datalog`] — the Datalog evaluator for the paper's query rules;
//! * [`core`] — provenance records, trackers, queries, and the editor;
//! * [`serve`] — the multi-session serving front (per-tenant archives,
//!   snapshot / read-your-writes sessions over one shared store);
//! * [`archive`] — version-stamped archiving of the target database;
//! * [`workload`] — synthetic databases and the evaluation's workloads.
//!
//! See `examples/quickstart.rs` for a guided tour, and the included
//! README below (its example runs as this crate's doctest).

#![forbid(unsafe_code)]
#![doc = include_str!("../README.md")]
#![warn(missing_docs)]

pub use cpdb_archive as archive;
pub use cpdb_core as core;
pub use cpdb_datalog as datalog;
pub use cpdb_obs as obs;
pub use cpdb_serve as serve;
pub use cpdb_storage as storage;
pub use cpdb_tree as tree;
pub use cpdb_update as update;
pub use cpdb_workload as workload;
pub use cpdb_xmldb as xmldb;

pub use cpdb_tree::{Database, Label, Path, Tree, Value};
pub use cpdb_update::{AtomicUpdate, InsertContent, UpdateScript, Workspace};
