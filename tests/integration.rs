//! End-to-end integration tests through the `cpdb` facade: a full
//! curation session across the XML-tree target, the relational-style
//! provenance store, the archive, and the query layer — everything a
//! downstream user touches.

use cpdb::archive::Archive;
use cpdb::core::{Editor, SqlStore, Strategy, Tid};
use cpdb::storage::Engine;
use cpdb::tree::{tree, Path, Tree};
use cpdb::update::parse_script;
use cpdb::xmldb::XmlDb;
use std::sync::Arc;

fn p(s: &str) -> Path {
    s.parse().unwrap()
}

/// A complete curation story: browse, copy, edit, commit, query, and
/// archive — with the provenance store persisted on disk and reopened.
#[test]
fn full_curation_lifecycle_with_disk_store() {
    let dir = std::env::temp_dir().join(format!("cpdb-integration-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let target = XmlDb::create("T", &Engine::in_memory()).unwrap();
    target.load(&tree! {}).unwrap();
    let source = XmlDb::create("S", &Engine::in_memory()).unwrap();
    source
        .load(&tree! {
            "r1" => { "name" => "Lamin-A", "loc" => "lamina" },
            "r2" => { "name" => "Nucleolin", "loc" => "nucleolus" },
        })
        .unwrap();

    let prov_engine = Engine::on_disk(&dir).unwrap();
    let store = Arc::new(SqlStore::create(&prov_engine, true).unwrap());
    let mut editor = Editor::new(
        "tester",
        Arc::new(target),
        Strategy::HierarchicalTransactional,
        store.clone(),
        Tid(1),
    )
    .with_source(Arc::new(source));
    let mut archive = Archive::new("T");

    // Transaction 1: copy both records.
    editor.run_script(&parse_script("copy S/r1 into T/a; copy S/r2 into T/b").unwrap(), 0).unwrap();
    archive.add_version(1, &editor.target().tree_from_db().unwrap());

    // Transaction 2: correct a field.
    editor
        .run_script(
            &parse_script("delete loc from T/a; insert {loc : \"nuclear lamina\"} into T/a")
                .unwrap(),
            0,
        )
        .unwrap();
    archive.add_version(2, &editor.target().tree_from_db().unwrap());

    // Queries across the whole stack.
    assert_eq!(editor.get_hist(&p("T/a/name")).unwrap(), vec![Tid(1)]);
    assert_eq!(editor.get_src(&p("T/a/loc")).unwrap(), Some(Tid(2)));
    let mods = editor.get_mod(&p("T/a")).unwrap();
    assert_eq!(mods.into_iter().collect::<Vec<_>>(), vec![Tid(1), Tid(2)]);

    // The archive can reproduce the pre-correction version.
    let v1 = archive.retrieve(1).unwrap();
    assert_eq!(v1.get(&p("a/loc")).unwrap(), &Tree::leaf("lamina"));

    // Persistence: flush, reopen the provenance store, same answers.
    store.flush().unwrap();
    drop(editor);
    let reopened_engine = Engine::on_disk(&dir).unwrap();
    let reopened = Arc::new(SqlStore::open(&reopened_engine, true).unwrap());
    use cpdb::core::ProvStore;
    assert_eq!(reopened.len(), store.len());
    let q = cpdb::core::QueryEngine::new(reopened, true, "T");
    assert_eq!(q.get_hist(&p("T/a/name"), Tid(2)).unwrap(), vec![Tid(1)]);

    std::fs::remove_dir_all(&dir).unwrap();
}

/// The facade re-exports compose: workload → editor → queries.
#[test]
fn workload_through_facade() {
    use cpdb::workload::{generate, GenConfig, UpdatePattern};
    let cfg = GenConfig::for_length(UpdatePattern::Mix, 150, 42);
    let wl = generate(&cfg, 150);

    let target = XmlDb::create(wl.target_name, &Engine::in_memory()).unwrap();
    target.load(&wl.target_initial).unwrap();
    let source = XmlDb::create(wl.source_name, &Engine::in_memory()).unwrap();
    source.load(&wl.source).unwrap();

    let mut editor = Editor::new(
        "tester",
        Arc::new(target),
        Strategy::Naive,
        Arc::new(cpdb::core::MemStore::new()),
        Tid(1),
    )
    .with_source(Arc::new(source));
    editor.run_script(&wl.script, 1).unwrap();

    // The editor's tree equals the formal semantics' tree.
    let mut ws = wl.workspace();
    ws.apply_script(&wl.script).unwrap();
    assert_eq!(editor.target().tree_from_db().unwrap(), *ws.target().root());
}

/// Datalog rules, approximate provenance, and recovery all reachable
/// and consistent through the facade.
#[test]
fn extensions_through_facade() {
    use cpdb::core::approx::{summarize, ApproxStore, MayAnswer};
    use cpdb::core::{rules, ProvRecord};

    // Approximate provenance.
    let exact = vec![
        ProvRecord::copy(Tid(3), p("T/a/x"), p("S/a/x")),
        ProvRecord::copy(Tid(3), p("T/b/x"), p("S/b/x")),
    ];
    let mut approx = ApproxStore::new();
    approx.add(summarize(&exact));
    assert_eq!(approx.len(), 1);
    assert_eq!(approx.may_come_from(&p("T/q/x"), &p("S/q/x")), MayAnswer::May);

    // Datalog rules parse and evaluate.
    let db = rules::evaluate(&rules::RuleInputs {
        records: &exact,
        versions: &[
            (Tid(2), vec![p("T")]),
            (Tid(3), vec![p("T"), p("T/a"), p("T/a/x"), p("T/b"), p("T/b/x")]),
        ],
        tnow: Tid(3),
        query_locs: &[p("T/a/x")],
        mod_roots: &[],
    })
    .unwrap();
    assert_eq!(rules::hist_answers(&db, &p("T/a/x")), vec![Tid(3)]);
}
